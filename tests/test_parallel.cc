/**
 * @file
 * Tests for the multi-lane executor: full coverage of the iteration
 * space, nesting safety, determinism, lane concurrency, wave mode,
 * and reconfiguration.
 */

#include <atomic>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "common/parallel.hh"

namespace mokey
{
namespace
{

TEST(Parallel, CoversEveryIndexExactlyOnce)
{
    for (const size_t n : {0u, 1u, 7u, 64u, 1000u, 4097u}) {
        std::vector<std::atomic<int>> hits(n);
        parallelFor(0, n, 1, [&](size_t i) { hits[i]++; });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(Parallel, RangeChunksPartitionTheRange)
{
    const size_t n = 1234;
    std::vector<std::atomic<int>> hits(n);
    parallelForRange(5, n, 10, [&](size_t lo, size_t hi) {
        ASSERT_LT(lo, hi);
        for (size_t i = lo; i < hi; ++i)
            hits[i]++;
    });
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(hits[i].load(), 0);
    for (size_t i = 5; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, NestedLoopsRunInline)
{
    // Regression: the calling thread drains chunks of the outer loop
    // itself, and a nested parallelFor() from inside its chunk used
    // to re-enter the pool and clobber the in-flight job (segfault
    // under MOKEY_THREADS>1). Nested loops — whether reached on a
    // worker or on the caller — must degrade to serial execution.
    const size_t original = threadCount();
    for (const size_t t : {1u, 4u}) {
        setThreadCount(t);
        std::atomic<uint64_t> total{0};
        parallelFor(0, 32, 1, [&](size_t) {
            parallelFor(0, 100, 1,
                        [&](size_t j) { total += j; });
        });
        EXPECT_EQ(total.load(), 32u * (99u * 100u / 2u))
            << "threads=" << t;
    }
    setThreadCount(original);
}

TEST(Parallel, ThreadCountSweepIsDeterministic)
{
    // A float reduction per index (all writes disjoint) must give
    // bit-identical output for every pool size.
    const size_t n = 513;
    const auto run = [&] {
        std::vector<double> out(n);
        parallelFor(0, n, 1, [&](size_t i) {
            double acc = 0.0;
            for (size_t p = 0; p < 100; ++p)
                acc += static_cast<double>(i * 31 + p) * 1e-3;
            out[i] = acc;
        });
        return out;
    };

    const size_t original = threadCount();
    setThreadCount(1);
    const auto serial = run();
    for (const size_t t : {2u, 5u, 16u}) {
        setThreadCount(t);
        const auto par = run();
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(serial[i], par[i]) << "threads=" << t;
    }
    setThreadCount(original);
}

TEST(Parallel, AcquiredLanesArePairwiseDistinct)
{
    // Round-robin over lanes 1..kLaneCount-1: any window of
    // kLaneCount-1 successive acquires is collision-free, and the
    // shared default lane 0 is never handed out.
    std::vector<size_t> ids;
    for (size_t i = 0; i < kLaneCount - 1; ++i)
        ids.push_back(Lane::acquire().id());
    for (size_t i = 0; i < ids.size(); ++i) {
        EXPECT_NE(ids[i], 0u);
        EXPECT_LT(ids[i], kLaneCount);
        for (size_t j = i + 1; j < ids.size(); ++j)
            EXPECT_NE(ids[i], ids[j]);
    }
}

TEST(Parallel, ConcurrentLanesCoverEveryIndexExactlyOnce)
{
    // The tentpole scenario: several top-level callers in flight at
    // once, each on its own lane, all sharing one worker set. Every
    // lane's loop must cover exactly its own indexes.
    const size_t original = threadCount();
    setThreadCount(4);
    constexpr size_t kLanes = 4, kN = 2048, kLoops = 8;
    std::vector<std::atomic<int>> hits(kLanes * kN);
    std::vector<std::thread> callers;
    for (size_t c = 0; c < kLanes; ++c) {
        callers.emplace_back([&, c] {
            const Lane lane = Lane::ofIndex(c);
            for (size_t rep = 0; rep < kLoops; ++rep)
                parallelFor(lane, 0, kN, 1, [&](size_t i) {
                    hits[c * kN + i]++;
                });
        });
    }
    for (auto &t : callers)
        t.join();
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), static_cast<int>(kLoops))
            << "slot " << i;
    setThreadCount(original);
}

TEST(Parallel, ConcurrentLanesStayBitIdentical)
{
    // Determinism is per-loop, not per-pool: a lane's result must be
    // bit-identical to the serial run even while other lanes hammer
    // the same workers — across pool sizes and both wave modes.
    const size_t n = 513;
    const auto run = [&](Lane lane) {
        std::vector<double> out(n);
        parallelFor(lane, 0, n, 1, [&](size_t i) {
            double acc = 0.0;
            for (size_t p = 0; p < 100; ++p)
                acc += static_cast<double>(i * 31 + p) * 1e-3;
            out[i] = acc;
        });
        return out;
    };

    const size_t original = threadCount();
    const size_t original_spin = waveSpin();
    setThreadCount(1);
    const auto serial = run(Lane{});

    for (const size_t t : {2u, 8u}) {
        for (const size_t spin_us : {0u, 200u}) {
            setThreadCount(t);
            setWaveSpin(spin_us);
            std::vector<std::vector<double>> got(3);
            std::vector<std::thread> callers;
            for (size_t c = 0; c < got.size(); ++c)
                callers.emplace_back([&, c] {
                    for (int rep = 0; rep < 4; ++rep)
                        got[c] = run(Lane::ofIndex(c));
                });
            for (auto &th : callers)
                th.join();
            for (size_t c = 0; c < got.size(); ++c)
                ASSERT_EQ(serial, got[c])
                    << "lane caller " << c << " threads=" << t
                    << " spin=" << spin_us;
        }
    }
    setWaveSpin(original_spin);
    setThreadCount(original);
}

TEST(Parallel, SameLaneSubmittersSerializeCorrectly)
{
    // Two threads on one lane: loops queue FIFO on the lane and each
    // still covers its range exactly once.
    const size_t original = threadCount();
    setThreadCount(3);
    const Lane lane = Lane::acquire();
    std::atomic<uint64_t> sum{0};
    std::vector<std::thread> callers;
    for (int c = 0; c < 2; ++c)
        callers.emplace_back([&] {
            for (int rep = 0; rep < 16; ++rep)
                parallelFor(lane, 0, 100, 1,
                            [&](size_t i) { sum += i; });
        });
    for (auto &t : callers)
        t.join();
    EXPECT_EQ(sum.load(), 2u * 16u * (99u * 100u / 2u));
    setThreadCount(original);
}

TEST(Parallel, NestedLoopInsideLaneRunsInline)
{
    const size_t original = threadCount();
    setThreadCount(4);
    const Lane lane = Lane::acquire();
    std::atomic<uint64_t> total{0};
    parallelFor(lane, 0, 16, 1, [&](size_t) {
        parallelFor(Lane::acquire(), 0, 50, 1,
                    [&](size_t j) { total += j; });
    });
    EXPECT_EQ(total.load(), 16u * (49u * 50u / 2u));
    setThreadCount(original);
}

TEST(Parallel, LaneStatsCountLoopsAndChunks)
{
    const size_t original = threadCount();
    setThreadCount(4);
    const Lane lane = Lane::acquire();
    const LaneStats before = laneStats(lane);
    std::atomic<int> hits{0};
    for (int rep = 0; rep < 3; ++rep)
        parallelFor(lane, 0, 512, 1, [&](size_t) { hits++; });
    const LaneStats after = laneStats(lane);
    EXPECT_EQ(hits.load(), 3 * 512);
    EXPECT_EQ(after.loops - before.loops, 3u);
    EXPECT_GE(after.chunks - before.chunks, 3u);
    setThreadCount(original);
}

TEST(Parallel, StealingKnobRoundTrips)
{
    const bool original = laneStealing();
    setLaneStealing(false);
    EXPECT_FALSE(laneStealing());
    setLaneStealing(true);
    EXPECT_TRUE(laneStealing());
    setLaneStealing(original);
}

TEST(Parallel, StealingCoversEveryIndexExactlyOnce)
{
    // Deliberately imbalanced concurrent lanes with stealing forced
    // on: two-ended chunk claiming must still cover every index of
    // every lane's loop exactly once (the front and back walks meet
    // exactly at the claim word, never overlapping).
    const size_t original = threadCount();
    const bool original_steal = laneStealing();
    setThreadCount(4);
    setLaneStealing(true);
    constexpr size_t kLanes = 3, kN = 4096, kLoops = 6;
    std::vector<std::atomic<int>> hits(kLanes * kN);
    std::vector<std::thread> callers;
    for (size_t c = 0; c < kLanes; ++c)
        callers.emplace_back([&, c] {
            const Lane lane = Lane::ofIndex(c);
            // Lane 0 does 8x the per-index work of the others, so
            // thieves have something to take from its tail.
            const size_t inner = c == 0 ? 800 : 100;
            for (size_t rep = 0; rep < kLoops; ++rep)
                parallelFor(lane, 0, kN, 1, [&](size_t i) {
                    volatile double acc = 0.0;
                    for (size_t p = 0; p < inner; ++p)
                        acc = acc + 1e-3;
                    hits[c * kN + i]++;
                });
        });
    for (auto &t : callers)
        t.join();
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), static_cast<int>(kLoops))
            << "slot " << i;
    setLaneStealing(original_steal);
    setThreadCount(original);
}

TEST(Parallel, StealingOnOffStaysBitIdentical)
{
    // The determinism contract under stealing: chunk boundaries are
    // a pure function of (range, grain, thread count), so forcing
    // stealing on or off must not change a single output bit even
    // with imbalanced lanes racing for the same workers.
    const size_t n = 2050;
    const auto run = [&](Lane lane, size_t inner) {
        std::vector<double> out(n);
        parallelFor(lane, 0, n, 1, [&](size_t i) {
            double acc = 0.0;
            for (size_t p = 0; p < inner; ++p)
                acc += static_cast<double>(i * 31 + p) * 1e-3;
            out[i] = acc;
        });
        return out;
    };

    const size_t original = threadCount();
    const bool original_steal = laneStealing();
    setThreadCount(1);
    const auto serial_heavy = run(Lane{}, 400);
    const auto serial_light = run(Lane{}, 50);

    for (const bool steal : {true, false}) {
        setThreadCount(4);
        setLaneStealing(steal);
        std::vector<double> heavy, light;
        std::thread h([&] {
            for (int rep = 0; rep < 4; ++rep)
                heavy = run(Lane::ofIndex(0), 400);
        });
        std::thread l([&] {
            for (int rep = 0; rep < 4; ++rep)
                light = run(Lane::ofIndex(1), 50);
        });
        h.join();
        l.join();
        ASSERT_EQ(serial_heavy, heavy) << "steal=" << steal;
        ASSERT_EQ(serial_light, light) << "steal=" << steal;
    }
    setLaneStealing(original_steal);
    setThreadCount(original);
}

TEST(Parallel, StealAndDonateCountersBalance)
{
    // Every stolen chunk is attributed exactly once on each side:
    // across all lanes, the steals delta equals the donated delta.
    // (Whether any steal happens at all is timing-dependent — on a
    // saturated 1-core host it can legitimately be zero.)
    const size_t original = threadCount();
    const bool original_steal = laneStealing();
    setThreadCount(4);
    setLaneStealing(true);

    // Each lane exactly once: the shared lane 0 plus ofIndex(0..14)
    // which covers 1..kLaneCount-1 without wrapping.
    const auto totals = [] {
        std::pair<uint64_t, uint64_t> t{laneStats(Lane{}).steals,
                                        laneStats(Lane{}).donated};
        for (size_t l = 0; l + 1 < kLaneCount; ++l) {
            const LaneStats s = laneStats(Lane::ofIndex(l));
            t.first += s.steals;
            t.second += s.donated;
        }
        return t;
    };
    const auto before = totals();

    constexpr size_t kLanes = 4;
    std::vector<std::thread> callers;
    for (size_t c = 0; c < kLanes; ++c)
        callers.emplace_back([&, c] {
            const Lane lane = Lane::ofIndex(c);
            const size_t inner = c == 0 ? 2000 : 50;
            std::atomic<uint64_t> sink{0};
            for (size_t rep = 0; rep < 8; ++rep)
                parallelFor(lane, 0, 1024, 1, [&](size_t i) {
                    uint64_t acc = 0;
                    for (size_t p = 0; p < inner; ++p)
                        acc += i * p;
                    sink += acc;
                });
        });
    for (auto &t : callers)
        t.join();

    const auto after = totals();
    EXPECT_EQ(after.first - before.first,
              after.second - before.second);
    setLaneStealing(original_steal);
    setThreadCount(original);
}

TEST(Parallel, WaveSpinKnobRoundTrips)
{
    const size_t original = waveSpin();
    setWaveSpin(150);
    EXPECT_EQ(waveSpin(), 150u);
    setWaveSpin(original);
}

TEST(Parallel, SetThreadCountClampsToOne)
{
    const size_t original = threadCount();
    setThreadCount(0);
    EXPECT_EQ(threadCount(), 1u);
    std::atomic<int> hits{0};
    parallelFor(0, 10, 1, [&](size_t) { hits++; });
    EXPECT_EQ(hits.load(), 10);
    setThreadCount(original);
}

} // anonymous namespace
} // namespace mokey
