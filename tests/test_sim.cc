/**
 * @file
 * Tests for the accelerator simulator: energy/area models, DRAM,
 * CRF/tile cycle models, the dataflow tiler, and the machine-level
 * results against the paper's published anchors.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "sim/accelerator.hh"
#include "sim/compression.hh"
#include "sim/crf.hh"
#include "sim/dataflow.hh"
#include "sim/dram.hh"
#include "sim/energy_model.hh"
#include "sim/gpe.hh"

namespace mokey
{
namespace
{

TEST(SramAreaModel, TableIIIAnchors)
{
    const auto wide = SramAreaModel::wideInterface();
    EXPECT_NEAR(wide.area(256 * 1024), 13.2, 0.6);
    EXPECT_NEAR(wide.area(512 * 1024), 16.8, 0.6);
    EXPECT_NEAR(wide.area(1024 * 1024), 24.7, 0.6);

    const auto narrow = SramAreaModel::narrowInterface();
    EXPECT_NEAR(narrow.area(256 * 1024), 4.7, 0.5);
    EXPECT_NEAR(narrow.area(512 * 1024), 8.0, 0.5);
    EXPECT_NEAR(narrow.area(1024 * 1024), 14.6, 0.5);
}

TEST(SramAreaModel, NarrowAlwaysSmaller)
{
    const auto wide = SramAreaModel::wideInterface();
    const auto narrow = SramAreaModel::narrowInterface();
    for (size_t kb : {128, 256, 512, 1024, 4096})
        EXPECT_LT(narrow.area(kb * 1024), wide.area(kb * 1024));
}

TEST(EnergyModel, SramEnergyScalesWithCapacity)
{
    const EnergyModel em;
    EXPECT_LT(em.sramPjPerBit(128 * 1024),
              em.sramPjPerBit(4 * 1024 * 1024));
    EXPECT_GT(em.sramPjPerBit(1024), 0.0);
}

TEST(EnergyModel, MokeyPairCheaperThanFp16Mac)
{
    const EnergyModel em;
    // Paper: Mokey compute units consume 2.7x less energy.
    EXPECT_NEAR(em.fp16MacPj / em.mokeyGaussPairPj, 2.7, 0.3);
}

TEST(DramModel, ZeroBytesFree)
{
    const DramModel d;
    const auto r = d.stream(0);
    EXPECT_EQ(r.cycles, 0.0);
    EXPECT_EQ(r.energyJ, 0.0);
}

TEST(DramModel, SingleStreamNearPeak)
{
    const DramModel d;
    const double bw = d.effectiveBandwidth(1);
    EXPECT_GT(bw, 0.6 * d.config().peakBytesPerCycle);
}

TEST(DramModel, MultiStreamHeavilyDerated)
{
    // The calibration point: multi-stream tiled traffic runs at
    // ~8 % of peak (what Table II's cycle counts imply).
    const DramModel d;
    const double bw2 = d.effectiveBandwidth(2);
    EXPECT_LT(bw2, 0.15 * d.config().peakBytesPerCycle);
    EXPECT_GT(bw2, 0.04 * d.config().peakBytesPerCycle);
    // More streams never help.
    EXPECT_LE(d.effectiveBandwidth(3), bw2 + 1e-9);
}

TEST(DramModel, CyclesMonotoneInBytes)
{
    const DramModel d;
    double prev = 0.0;
    for (uint64_t mb = 1; mb <= 64; mb *= 2) {
        const auto r = d.stream(mb * 1024 * 1024, 2);
        EXPECT_GT(r.cycles, prev);
        prev = r.cycles;
    }
}

TEST(DramModel, EnergyProportionalToBits)
{
    const DramModel d;
    const auto r1 = d.stream(16 * 1024 * 1024, 2);
    const auto r2 = d.stream(32 * 1024 * 1024, 2);
    EXPECT_NEAR(r2.energyJ / r1.energyJ, 2.0, 0.05);
}

TEST(CrfSim, TotalsExactWithoutDrain)
{
    CrfSim crf(15, 8);
    for (int i = 0; i < 50; ++i)
        crf.bump(3, 1);
    for (int i = 0; i < 20; ++i)
        crf.bump(3, -1);
    EXPECT_EQ(crf.total(3), 30);
    EXPECT_EQ(crf.drains(), 0u);
}

TEST(CrfSim, DrainPreservesTotals)
{
    CrfSim crf(4, 4); // saturates at +-7
    for (int i = 0; i < 1000; ++i)
        crf.bump(1, 1);
    EXPECT_EQ(crf.total(1), 1000);
    EXPECT_GT(crf.drains(), 0u);
}

TEST(CrfSim, MixedEntriesIndependent)
{
    CrfSim crf(8, 8);
    crf.bump(0, 1);
    crf.bump(7, -1);
    EXPECT_EQ(crf.total(0), 1);
    EXPECT_EQ(crf.total(7), -1);
    EXPECT_EQ(crf.total(3), 0);
}

TEST(CrfSim, ClearResets)
{
    CrfSim crf(4, 8);
    crf.bump(2, 1);
    crf.clear();
    EXPECT_EQ(crf.total(2), 0);
    EXPECT_EQ(crf.drains(), 0u);
}

TEST(TileSim, NoOutliersRunsAtPeak)
{
    const TileSim tile;
    const auto r = tile.runSynthetic(1024, 0.0, 0, 42);
    EXPECT_EQ(r.outlierPairs, 0u);
    EXPECT_EQ(r.holdCycles, 0u);
    // 1024 pairs per GPE at 8/cycle = 128 cycles exactly.
    EXPECT_EQ(r.cycles, 128u);
    EXPECT_NEAR(r.throughput(), 64.0, 1e-9);
}

TEST(TileSim, AllOutliersOppBound)
{
    TileConfig cfg;
    cfg.oppPerCycle = 1;
    const TileSim tile(cfg);
    const auto r = tile.runSynthetic(64, 1.0, 0, 43);
    // 8 GPEs x 64 outliers each through a 1/cycle OPP.
    EXPECT_GE(r.cycles, 8u * 64u);
    EXPECT_GT(r.holdCycles, 0u);
}

TEST(TileSim, PostprocessingChargedPerOutput)
{
    const TileSim tile;
    const auto r0 = tile.runSynthetic(64, 0.0, 0, 44);
    const auto r1 = tile.runSynthetic(64, 0.0, 10, 44);
    EXPECT_EQ(r1.cycles - r0.cycles,
              10u * tile.config().postprocessCycles);
}

class TileAnalytic : public ::testing::TestWithParam<double>
{
};

TEST_P(TileAnalytic, AnalyticBracketsCycleModel)
{
    // The analytic form is an upper bound: near the OPP saturation
    // knee, bursty outlier arrivals plus group-granular holds keep
    // the measured throughput below it (blocking feedback throttles
    // arrivals before the OPP fully saturates). Away from the knee
    // the bound is tight.
    const double p = GetParam();
    TileConfig cfg;
    cfg.oppPerCycle = 2;
    const TileSim tile(cfg);
    const auto r = tile.runSynthetic(20000, p, 0, 77);
    const double analytic = tile.analyticThroughput(p);
    EXPECT_LE(r.throughput(), analytic * 1.02) << "p=" << p;
    EXPECT_GE(r.throughput(), analytic * 0.5) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(OutlierSweep, TileAnalytic,
                         ::testing::Values(0.0, 0.01, 0.02, 0.04,
                                           0.08, 0.15));

TEST(Dataflow, SmallGemmSingleFetch)
{
    const GemmOp op{"t", 64, 64, 64, 1, true};
    const StorageBits bits{16, 16, 16, 16};
    const auto d = tileGemm(op, bits, 8.0 * 1024 * 1024, false);
    EXPECT_DOUBLE_EQ(d.weightFetches, 1.0);
    EXPECT_DOUBLE_EQ(d.actFetches, 1.0);
    EXPECT_DOUBLE_EQ(d.trafficBits, (64. * 64 + 64. * 64 + 64. * 64)
                     * 16);
}

TEST(Dataflow, ReloadsGrowAsBufferShrinks)
{
    const GemmOp op{"t", 512, 4096, 1024, 1, true};
    const StorageBits bits{16, 16, 16, 16};
    // Smaller buffer => more traffic, monotonically.
    double prev = 0.0;
    for (size_t kb : {4096, 1024, 256, 64}) {
        const auto d = tileGemm(op, bits, kb * 8.0 * 1024, false);
        EXPECT_GE(d.trafficBits, prev);
        prev = d.trafficBits;
    }
    const auto big = tileGemm(op, bits, 4096 * 8.0 * 1024, false);
    const auto small = tileGemm(op, bits, 64 * 8.0 * 1024, false);
    EXPECT_GT(small.trafficBits, big.trafficBits);
}

TEST(Dataflow, ActResidencyRemovesActTraffic)
{
    const GemmOp op{"t", 128, 768, 768, 1, true};
    const StorageBits bits{16, 16, 16, 16};
    const auto spill = tileGemm(op, bits, 1e6, false);
    const auto resident = tileGemm(op, bits, 1e6, true);
    EXPECT_LT(resident.trafficBits, spill.trafficBits);
}

TEST(Dataflow, CompressionShrinksWorkloadTraffic)
{
    const auto w = modelWorkload(bertBase(), 128);
    const StorageBits fp16{16, 16, 16, 16};
    const StorageBits mokey{4.3, 4.3, 5, 5};
    const auto t16 = tileWorkload(w, fp16, 512 * 1024);
    const auto t4 = tileWorkload(w, mokey, 512 * 1024);
    // >= 3.7x from width alone, more from better residency.
    EXPECT_GT(t16.totalBits / t4.totalBits, 3.7);
}

TEST(Dataflow, MaxLayerActBitsMatchesConfigEstimate)
{
    const auto cfg = bertLarge();
    const auto w = modelWorkload(cfg, 128);
    const double got = maxLayerActivationBits(w, 16.0);
    // Same order as the Fig. 1 per-layer activation volume estimate
    // (the workload version double counts layer inputs as both
    // producer output and consumer input).
    const double est = static_cast<double>(
        cfg.activationValuesPerLayer(128)) * 16.0;
    EXPECT_GT(got, 0.5 * est);
    EXPECT_LT(got, 3.0 * est);
}

class MachineAnchors : public ::testing::Test
{
  protected:
    MachineAnchors() : w(modelWorkload(bertBase(), 128)) {}
    Workload w;
};

TEST_F(MachineAnchors, TableIICycleCounts)
{
    // Paper Table II (BERT-Base, 512 KB): TC 167M, GOBO 52M,
    // Mokey 29M cycles. Allow 30 % — the shape claim.
    const auto tc = simulate(tensorCoresMachine(), w, 512 * 1024);
    const auto gb = simulate(goboMachine(), w, 512 * 1024);
    const auto mk = simulate(mokeyMachine(), w, 512 * 1024);
    EXPECT_NEAR(tc.totalCycles, 167e6, 50e6);
    EXPECT_NEAR(gb.totalCycles, 52e6, 16e6);
    EXPECT_NEAR(mk.totalCycles, 29e6, 9e6);
    EXPECT_GT(tc.totalCycles, gb.totalCycles);
    EXPECT_GT(gb.totalCycles, mk.totalCycles);
}

TEST_F(MachineAnchors, TableIIEnergies)
{
    // Paper: TC 0.36 J, GOBO 0.17 J, Mokey 0.09 J.
    const auto tc = simulate(tensorCoresMachine(), w, 512 * 1024);
    const auto gb = simulate(goboMachine(), w, 512 * 1024);
    const auto mk = simulate(mokeyMachine(), w, 512 * 1024);
    EXPECT_NEAR(tc.totalJ, 0.36, 0.13);
    EXPECT_NEAR(gb.totalJ, 0.17, 0.06);
    EXPECT_NEAR(mk.totalJ, 0.09, 0.03);
}

TEST_F(MachineAnchors, ComputeAreasMatchTableII)
{
    EXPECT_DOUBLE_EQ(tensorCoresMachine().computeAreaMm2, 16.1);
    EXPECT_DOUBLE_EQ(goboMachine().computeAreaMm2, 15.9);
    EXPECT_DOUBLE_EQ(mokeyMachine().computeAreaMm2, 14.8);
}

TEST_F(MachineAnchors, CyclesMonotoneInBufferSize)
{
    // Fig. 9 property: larger buffers never slow inference down.
    for (const auto &m : {tensorCoresMachine(), goboMachine(),
                          mokeyMachine()}) {
        double prev = 1e300;
        for (size_t buf : paperBufferSweep()) {
            const auto r = simulate(m, w, buf);
            EXPECT_LE(r.totalCycles, prev * 1.001) << m.name;
            prev = r.totalCycles;
        }
    }
}

TEST_F(MachineAnchors, MokeyChipSmallerAtIsoCapacity)
{
    const auto tc = simulate(tensorCoresMachine(), w, 1024 * 1024);
    const auto mk = simulate(mokeyMachine(), w, 1024 * 1024);
    EXPECT_LT(mk.totalAreaMm2, tc.totalAreaMm2);
}

TEST_F(MachineAnchors, OverlapImprovesWithBuffer)
{
    double prev = 0.0;
    for (size_t buf : paperBufferSweep()) {
        const auto r = simulate(mokeyMachine(), w, buf);
        EXPECT_GE(r.overlapFraction, prev - 1e-9);
        prev = r.overlapFraction;
    }
}

TEST(Sweeps, MokeySpeedupBandsVsTensorCores)
{
    // Fig. 10: larger gains with smaller buffers; at least ~2.5x
    // everywhere, bigger than 4x at 256 KB in our calibration
    // (paper: 4.1x - 11x).
    const auto cs = sweepComparison(tensorCoresMachine(),
                                    mokeyMachine(), paperLineup(),
                                    paperBufferSweep());
    const double small = geomeanSpeedup(cs, 256 * 1024);
    const double large = geomeanSpeedup(cs, 4096 * 1024);
    EXPECT_GT(small, large);
    EXPECT_GT(small, 4.0);
    EXPECT_GT(large, 2.0);
}

TEST(Sweeps, MokeyEnergyEfficiencyOrderOfMagnitude)
{
    // Fig. 11: "one to two orders of magnitude" perf/J at small
    // buffers, ~13x at 4 MB.
    const auto cs = sweepComparison(tensorCoresMachine(),
                                    mokeyMachine(), paperLineup(),
                                    paperBufferSweep());
    EXPECT_GT(geomeanEnergyEff(cs, 256 * 1024), 20.0);
    EXPECT_GT(geomeanEnergyEff(cs, 4096 * 1024), 6.0);
}

TEST(Sweeps, MokeyBeatsGoboOnEnergyEverywhere)
{
    // Fig. 13: 9x at small buffers decaying to ~2x at 4 MB.
    const auto cs = sweepComparison(goboMachine(), mokeyMachine(),
                                    paperLineup(),
                                    paperBufferSweep());
    double prev = 1e300;
    for (size_t buf : paperBufferSweep()) {
        const double e = geomeanEnergyEff(cs, buf);
        EXPECT_GT(e, 1.5) << bufferLabel(buf);
        EXPECT_LE(e, prev + 0.3);
        prev = e;
    }
}

TEST(Sweeps, CompressionModesOrdered)
{
    // Fig. 14: OC+ON >= OC >= 1 in speedup, biggest at small
    // buffers.
    const auto pts = paperLineup();
    const auto bufs = paperBufferSweep();
    const auto oc = sweepComparison(tensorCoresMachine(),
                                    tensorCoresMokeyOffChip(), pts,
                                    bufs);
    const auto on = sweepComparison(tensorCoresMachine(),
                                    tensorCoresMokeyOnChip(), pts,
                                    bufs);
    for (size_t buf : bufs) {
        const double s_oc = geomeanSpeedup(oc, buf);
        const double s_on = geomeanSpeedup(on, buf);
        EXPECT_GE(s_on, s_oc - 1e-9) << bufferLabel(buf);
        EXPECT_GT(s_oc, 1.5) << bufferLabel(buf);
    }
    // Paper: ~3.9x average OC speedup at 256 KB.
    EXPECT_NEAR(geomeanSpeedup(oc, 256 * 1024), 3.9, 1.3);
}

TEST(Sweeps, CompressionEnergyEfficiency)
{
    // Fig. 15: ~11x at 256 KB OC; OC+ON much larger at small
    // buffers (paper: 54x).
    const auto pts = paperLineup();
    const auto bufs = paperBufferSweep();
    const auto oc = sweepComparison(tensorCoresMachine(),
                                    tensorCoresMokeyOffChip(), pts,
                                    bufs);
    const auto on = sweepComparison(tensorCoresMachine(),
                                    tensorCoresMokeyOnChip(), pts,
                                    bufs);
    EXPECT_GT(geomeanEnergyEff(oc, 256 * 1024), 6.0);
    EXPECT_GT(geomeanEnergyEff(on, 256 * 1024),
              geomeanEnergyEff(oc, 256 * 1024));
}

TEST(Sweeps, BufferLabels)
{
    EXPECT_EQ(bufferLabel(256 * 1024), "256KB");
    EXPECT_EQ(bufferLabel(4096 * 1024), "4MB");
}

TEST(OutlierRatesTest, PairProbabilities)
{
    const OutlierRates r{0.015, 0.045};
    EXPECT_NEAR(r.weightActPair(), 1 - 0.985 * 0.955, 1e-12);
    EXPECT_NEAR(r.actActPair(), 1 - 0.955 * 0.955, 1e-12);
    EXPECT_GT(r.actActPair(), r.weightActPair());
}

} // anonymous namespace
} // namespace mokey
