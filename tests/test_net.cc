/**
 * @file
 * Network front-end tests: the HTTP wire-format parsers, the binary
 * tensor protocol, and full loopback integration through the epoll
 * server — keep-alive reuse, bit-identical served results, overload
 * shedding at the queue-depth cap, per-client fairness, and graceful
 * drain that completes in-flight requests.
 */

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "model/config.hh"
#include "model/pipeline.hh"
#include "net/http.hh"
#include "net/http_client.hh"
#include "net/inference_server.hh"
#include "net/socket_server.hh"
#include "quant/exp_dictionary.hh"
#include "test_util.hh"

namespace mokey
{
namespace
{

using net::HttpRequest;
using net::HttpRequestParser;
using net::HttpResponse;
using net::HttpResponseParser;

// ---- wire-format units ----------------------------------------------

TEST(HttpParser, SimpleGet)
{
    HttpRequestParser p;
    const std::string wire =
        "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
    p.feed(wire.data(), wire.size());
    HttpRequest req;
    ASSERT_EQ(p.next(req), HttpRequestParser::Status::Ready);
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.target, "/healthz");
    EXPECT_EQ(req.version, "HTTP/1.1");
    EXPECT_TRUE(req.keepAlive);
    EXPECT_TRUE(req.body.empty());
    ASSERT_NE(req.header("Host"), nullptr);
    EXPECT_EQ(*req.header("host"), "x"); // case-insensitive
    EXPECT_EQ(p.next(req), HttpRequestParser::Status::NeedMore);
}

TEST(HttpParser, PostBodyFedByteByByte)
{
    HttpRequestParser p;
    const std::string wire = "POST /v1/forward HTTP/1.1\r\n"
                             "Content-Length: 5\r\n\r\nhello";
    HttpRequest req;
    for (size_t i = 0; i + 1 < wire.size(); ++i) {
        p.feed(&wire[i], 1);
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::NeedMore)
            << "byte " << i;
    }
    p.feed(&wire[wire.size() - 1], 1);
    ASSERT_EQ(p.next(req), HttpRequestParser::Status::Ready);
    EXPECT_EQ(req.body, "hello");
}

TEST(HttpParser, PipelinedRequestsParseInOrder)
{
    HttpRequestParser p;
    const std::string wire =
        "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nAA"
        "GET /b HTTP/1.1\r\n\r\n";
    p.feed(wire.data(), wire.size());
    HttpRequest req;
    ASSERT_EQ(p.next(req), HttpRequestParser::Status::Ready);
    EXPECT_EQ(req.target, "/a");
    EXPECT_EQ(req.body, "AA");
    ASSERT_EQ(p.next(req), HttpRequestParser::Status::Ready);
    EXPECT_EQ(req.target, "/b");
    EXPECT_EQ(p.next(req), HttpRequestParser::Status::NeedMore);
}

TEST(HttpParser, KeepAliveSemantics)
{
    const auto parse = [](const std::string &wire) {
        HttpRequestParser p;
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        EXPECT_EQ(p.next(req), HttpRequestParser::Status::Ready);
        return req.keepAlive;
    };
    EXPECT_TRUE(parse("GET / HTTP/1.1\r\n\r\n"));
    EXPECT_FALSE(parse("GET / HTTP/1.0\r\n\r\n"));
    EXPECT_FALSE(
        parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
    EXPECT_TRUE(
        parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
}

TEST(HttpParser, RejectsProtocolViolations)
{
    {
        HttpRequestParser p;
        const std::string wire = "NOT-A-REQUEST-LINE\r\n\r\n";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
        EXPECT_EQ(p.errorStatus(), 400);
        // Sticky: the connection is poisoned.
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
    }
    {
        HttpRequestParser p;
        const std::string wire = "GET / HTTP/2.0\r\n\r\n";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
        EXPECT_EQ(p.errorStatus(), 505);
    }
    {
        HttpRequestParser p;
        const std::string wire = "POST / HTTP/1.1\r\n"
                                 "Transfer-Encoding: chunked\r\n"
                                 "\r\n";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
        EXPECT_EQ(p.errorStatus(), 501);
    }
}

TEST(HttpParser, RejectsDuplicateContentLength)
{
    // RFC 9112: conflicting Content-Length values must be rejected;
    // first-wins parsing behind a last-wins proxy is a smuggling
    // desync. Identical duplicates are rejected too (no reason for
    // a legitimate client to send them).
    for (const char *second : {"2", "5"}) {
        HttpRequestParser p;
        const std::string wire = "POST / HTTP/1.1\r\n"
                                 "Content-Length: 5\r\n"
                                 "Content-Length: " +
                                 std::string(second) +
                                 "\r\n\r\nhello";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error)
            << "second CL = " << second;
        EXPECT_EQ(p.errorStatus(), 400);
    }
}

TEST(HttpParser, EnforcesHeaderAndBodyCaps)
{
    net::HttpLimits lim;
    lim.maxHeaderBytes = 64;
    lim.maxBodyBytes = 16;
    {
        HttpRequestParser p(lim);
        const std::string wire = "GET / HTTP/1.1\r\nX-Pad: " +
                                 std::string(100, 'a') + "\r\n\r\n";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
        EXPECT_EQ(p.errorStatus(), 431);
    }
    {
        HttpRequestParser p(lim);
        const std::string wire =
            "POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
        EXPECT_EQ(p.errorStatus(), 413);
    }
}

TEST(HttpParser, ResponseRoundTripContentLengthAndChunked)
{
    {
        const std::string wire = net::serializeResponse(
            200, {{"Content-Type", "text/plain"}}, "payload", true);
        HttpResponseParser p;
        p.feed(wire.data(), wire.size());
        HttpResponse resp;
        ASSERT_EQ(p.next(resp), HttpResponseParser::Status::Ready);
        EXPECT_EQ(resp.status, 200);
        EXPECT_EQ(resp.body, "payload");
        EXPECT_TRUE(resp.keepAlive);
    }
    {
        std::string wire = net::chunkedHead(200, {}, false);
        wire += net::chunk("abc", 3);
        wire += net::chunk("defgh", 5);
        wire += net::lastChunk();
        HttpResponseParser p;
        HttpResponse resp;
        // Feed in two pieces to exercise the incremental path.
        p.feed(wire.data(), wire.size() / 2);
        ASSERT_EQ(p.next(resp),
                  HttpResponseParser::Status::NeedMore);
        p.feed(wire.data() + wire.size() / 2,
               wire.size() - wire.size() / 2);
        ASSERT_EQ(p.next(resp), HttpResponseParser::Status::Ready);
        EXPECT_EQ(resp.body, "abcdefgh");
        EXPECT_FALSE(resp.keepAlive);
    }
}

TEST(TensorBody, RoundTripAndRejects)
{
    Tensor t(3, 5);
    for (size_t i = 0; i < t.size(); ++i)
        t.raw()[i] = 0.25f * static_cast<float>(i) - 1.0f;
    const std::string body = net::encodeTensorBody(t);
    ASSERT_EQ(body.size(), 8 + 15 * sizeof(float));
    Tensor back;
    ASSERT_TRUE(net::decodeTensorBody(body, back));
    ASSERT_EQ(back.rows(), 3u);
    ASSERT_EQ(back.cols(), 5u);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.raw()[i], back.raw()[i]);

    Tensor junk;
    EXPECT_FALSE(net::decodeTensorBody("", junk));
    EXPECT_FALSE(net::decodeTensorBody("short", junk));
    EXPECT_FALSE(net::decodeTensorBody(body.substr(0, 12), junk));
    std::string zero(body);
    std::memset(&zero[0], 0, 4); // rows = 0
    EXPECT_FALSE(net::decodeTensorBody(zero, junk));
}

TEST(TensorBody, OverflowingDimsRejectedWithoutAllocation)
{
    const auto putLE = [](std::string &s, uint32_t v) {
        for (int i = 0; i < 4; ++i)
            s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    };
    Tensor junk;
    {
        // rows = cols = 2^31: n = 2^62, and 8 + 4n wraps mod 2^64
        // back to 8 — a product-form size check passes an 8-byte
        // body and the decoder would try to allocate 2^62 floats.
        std::string evil;
        putLE(evil, 0x80000000u);
        putLE(evil, 0x80000000u);
        EXPECT_FALSE(net::decodeTensorBody(evil, junk));
        // Same dims with a plausible-looking payload attached.
        evil.append(16, '\0');
        EXPECT_FALSE(net::decodeTensorBody(evil, junk));
    }
    {
        // Payload not a multiple of sizeof(float).
        std::string ragged;
        putLE(ragged, 1);
        putLE(ragged, 1);
        ragged.append(5, '\0');
        EXPECT_FALSE(net::decodeTensorBody(ragged, junk));
    }
    {
        // Float count disagrees with rows*cols.
        std::string extra;
        putLE(extra, 1);
        putLE(extra, 1);
        extra.append(8, '\0'); // two floats for a 1x1 tensor
        EXPECT_FALSE(net::decodeTensorBody(extra, junk));
    }
}

// ---- loopback integration -------------------------------------------

ModelConfig
tinyConfig()
{
    return ModelConfig{"tiny", 2, 32, 2, 128, 256};
}

class NetServingFixture : public ::testing::Test
{
  protected:
    NetServingFixture()
        : model(tinyConfig(), 23),
          exp(1.179, -0.977, 8),
          quantizer(exp),
          pipeline(model, quantizer)
    {
        pipeline.quantizeWeights();
        std::vector<Tensor> batch;
        for (int i = 0; i < 4; ++i)
            batch.push_back(model.makeInput(16, 100 + i));
        pipeline.profileActivations(batch);
    }

    Transformer model;
    ExpDictionary exp;
    Quantizer quantizer;
    QuantizedTransformer pipeline;
};

TEST_F(NetServingFixture, ServedBytesBitIdenticalToDirectForward)
{
    for (const bool stream_rows : {true, false}) {
        net::InferenceServerConfig cfg;
        cfg.streamRows = stream_rows;
        cfg.scheduler.flushTimeout = std::chrono::microseconds(500);
        net::InferenceServer srv(pipeline, cfg);
        srv.start();

        net::HttpClient client("127.0.0.1", srv.port());
        const size_t lens[] = {7, 1, 16, 3};
        for (size_t i = 0; i < 4; ++i) {
            const Tensor in = model.makeInput(lens[i], 800 + i);
            const auto resp = client.post(
                "/v1/forward", net::encodeTensorBody(in));
            ASSERT_EQ(resp.status, 200)
                << "stream=" << stream_rows << " req=" << i << ": "
                << resp.body;
            Tensor out;
            ASSERT_TRUE(net::decodeTensorBody(resp.body, out));
            const Tensor ref = pipeline.forward(
                in, QuantMode::WeightsAndActivations);
            ASSERT_EQ(out.rows(), ref.rows());
            ASSERT_EQ(out.cols(), ref.cols());
            for (size_t j = 0; j < ref.size(); ++j)
                ASSERT_EQ(out.raw()[j], ref.raw()[j])
                    << "stream=" << stream_rows << " req=" << i
                    << " elem=" << j;
        }
        const auto st = srv.stats();
        EXPECT_EQ(st.requests, 4u);
        EXPECT_EQ(st.completed, 4u);
        EXPECT_EQ(st.failed, 0u);
        srv.drain();
    }
}

TEST_F(NetServingFixture, KeepAliveReusesOneConnection)
{
    net::InferenceServer srv(pipeline, {});
    srv.start();
    net::HttpClient client("127.0.0.1", srv.port());
    for (int i = 0; i < 5; ++i) {
        const Tensor in = model.makeInput(4, 300 + i);
        const auto resp =
            client.post("/v1/forward", net::encodeTensorBody(in));
        ASSERT_EQ(resp.status, 200);
        EXPECT_TRUE(resp.keepAlive);
    }
    EXPECT_EQ(client.dials(), 1u);
    EXPECT_EQ(srv.socketStats().accepted, 1u);
    EXPECT_EQ(srv.stats().completed, 5u);
    srv.drain();
}

TEST_F(NetServingFixture, HealthzStatsAndRouteErrors)
{
    net::InferenceServer srv(pipeline, {});
    srv.start();
    net::HttpClient client("127.0.0.1", srv.port());

    const auto health = client.get("/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "ok\n");

    const auto missing = client.get("/nope");
    EXPECT_EQ(missing.status, 404);
    const auto wrongMethod = client.get("/v1/forward");
    EXPECT_EQ(wrongMethod.status, 405);
    const auto badBody = client.post("/v1/forward", "garbage");
    EXPECT_EQ(badBody.status, 400);

    // Wrong width: right framing, wrong cols.
    Tensor narrow(2, 8);
    const auto badCols = client.post(
        "/v1/forward", net::encodeTensorBody(narrow));
    EXPECT_EQ(badCols.status, 400);

    const auto stats = client.get("/v1/stats");
    EXPECT_EQ(stats.status, 200);
    EXPECT_NE(stats.body.find("\"bad_requests\": 4"),
              std::string::npos)
        << stats.body;
    EXPECT_NE(stats.body.find("\"queue_depth\""),
              std::string::npos);
    srv.drain();
}

/** Functor-engine server: echo with a configurable service time. */
struct SlowEchoServer
{
    static constexpr size_t kCols = 8;

    explicit SlowEchoServer(std::chrono::milliseconds delay,
                            net::InferenceServerConfig cfg = {})
        : server(
              [delay](const std::vector<Tensor> &inputs, QuantMode,
                      Lane) {
                  std::this_thread::sleep_for(delay);
                  return inputs; // echo
              },
              kCols, cfg)
    {
        server.start();
    }

    net::InferenceServer server;
};

TEST(NetAdmission, OverloadShedsWith503AtQueueDepthCap)
{
    net::InferenceServerConfig cfg;
    cfg.maxQueueDepth = 2;
    cfg.scheduler.maxBatch = 1;
    SlowEchoServer srv(std::chrono::milliseconds(100), cfg);

    constexpr int kClients = 8;
    std::atomic<int> ok{0}, shed{0}, other{0};
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            net::HttpClient c("127.0.0.1", srv.server.port());
            Tensor in(2, SlowEchoServer::kCols);
            in.raw()[0] = static_cast<float>(i);
            const auto resp =
                c.post("/v1/forward", net::encodeTensorBody(in));
            if (resp.status == 200) {
                Tensor out;
                ASSERT_TRUE(net::decodeTensorBody(resp.body, out));
                EXPECT_EQ(out.raw()[0], static_cast<float>(i));
                ++ok;
            } else if (resp.status == 503) {
                EXPECT_NE(resp.header("Retry-After"), nullptr);
                ++shed;
            } else {
                ++other;
            }
        });
    }
    for (auto &c : clients)
        c.join();

    EXPECT_EQ(other.load(), 0);
    EXPECT_GE(ok.load(), 1);
    EXPECT_GE(shed.load(), 1) << "cap never engaged";
    EXPECT_EQ(ok.load() + shed.load(), kClients);
    const auto st = srv.server.stats();
    EXPECT_EQ(st.completed, static_cast<uint64_t>(ok.load()));
    EXPECT_EQ(st.shed, static_cast<uint64_t>(shed.load()));
    srv.server.drain();
}

TEST(NetAdmission, PerPeerConnectionCapRefusesExtraConnections)
{
    net::InferenceServerConfig cfg;
    cfg.socket.maxConnectionsPerPeer = 1;
    SlowEchoServer srv(std::chrono::milliseconds(0), cfg);

    net::HttpClient first("127.0.0.1", srv.server.port());
    EXPECT_EQ(first.get("/healthz").status, 200);

    // The first client's keep-alive connection occupies the peer's
    // whole allowance: a second concurrent connection is refused at
    // accept (immediate close -> the client sees a dead socket).
    net::HttpClient second("127.0.0.1", srv.server.port(),
                           std::chrono::milliseconds(2000));
    EXPECT_THROW(second.get("/healthz"), std::runtime_error);
    EXPECT_GE(srv.server.socketStats().peerRefused, 1u);

    // Still one request of service for the first client.
    EXPECT_EQ(first.get("/healthz").status, 200);
    srv.server.drain();
}

/**
 * Raw pipelined exchange: connect, send @p wire in one write, read
 * until the server closes. Used to park a second request behind an
 * in-flight one — something the one-at-a-time HttpClient cannot do.
 */
std::string
rawPipelinedExchange(uint16_t port, const std::string &wire,
                     const std::function<void()> &afterSend)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    timeval tv{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    EXPECT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    afterSend();
    std::string got;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        got.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return got;
}

TEST(NetDrain, GracefulDrainCompletesInflightAndShedsNew)
{
    net::InferenceServerConfig cfg;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(200);
    SlowEchoServer srv(std::chrono::milliseconds(150), cfg);
    const uint16_t port = srv.server.port();

    Tensor in(3, SlowEchoServer::kCols);
    for (size_t i = 0; i < in.size(); ++i)
        in.raw()[i] = static_cast<float>(i) * 0.5f;
    const std::string body = net::encodeTensorBody(in);
    const std::string post =
        "POST /v1/forward HTTP/1.1\r\nHost: t\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;

    // Two pipelined requests in one write: the first is admitted
    // (slow engine keeps it in flight), the second stays buffered
    // behind it. Drain begins while #1 runs, so #1 must complete
    // with full data and #2 must be shed with 503.
    const std::string wire = post + post;
    const auto transcript = rawPipelinedExchange(
        port, wire, [&] {
            while (srv.server.queueDepth() == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            srv.server.beginDrain();
        });

    const size_t okPos = transcript.find("HTTP/1.1 200");
    const size_t shedPos = transcript.find("HTTP/1.1 503");
    ASSERT_NE(okPos, std::string::npos) << transcript.substr(0, 200);
    ASSERT_NE(shedPos, std::string::npos)
        << transcript.substr(0, 200);
    EXPECT_LT(okPos, shedPos) << "responses out of order";
    // The completed response carries the full echoed tensor.
    EXPECT_NE(transcript.find("application/x-mokey-tensor"),
              std::string::npos);

    srv.server.drain(); // blocks until the loop exits
    const auto st = srv.server.socketStats();
    EXPECT_GE(st.drainSheds, 1u);
    EXPECT_EQ(srv.server.stats().completed, 1u);

    // Post-drain, the listener is gone: connects fail fast.
    net::HttpClient late("127.0.0.1", port,
                         std::chrono::milliseconds(2000));
    EXPECT_THROW(late.get("/healthz"), std::runtime_error);
}

TEST(NetBackpressure, InflightFloodPausesReadsThenRecovers)
{
    // While a slow request is in flight the parser is not advanced,
    // so pipelined bytes accumulate unparsed. With tiny limits the
    // flood below crosses the receive cap (maxHeaderBytes +
    // maxBodyBytes = 1 KiB), forcing the loop to pause reads on the
    // connection; every buffered request must still be served once
    // the in-flight response completes (pause must not deadlock or
    // drop bytes).
    net::InferenceServerConfig cfg;
    cfg.socket.limits.maxHeaderBytes = 512;
    cfg.socket.limits.maxBodyBytes = 512;
    cfg.maxQueueDepth = 64;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(200);
    SlowEchoServer srv(std::chrono::milliseconds(100), cfg);

    Tensor in(2, SlowEchoServer::kCols);
    const std::string body = net::encodeTensorBody(in);
    const std::string post =
        "POST /v1/forward HTTP/1.1\r\nHost: t\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    constexpr int kFlood = 40; // ~36 bytes each: well past the cap
    std::string wire = post;
    for (int i = 0; i < kFlood; ++i)
        wire += "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    wire += "GET /healthz HTTP/1.1\r\nHost: t\r\n"
            "Connection: close\r\n\r\n";
    ASSERT_GT(wire.size() - post.size(),
              cfg.socket.limits.maxHeaderBytes +
                  cfg.socket.limits.maxBodyBytes);

    const auto transcript =
        rawPipelinedExchange(srv.server.port(), wire, [] {});

    size_t oks = 0;
    for (size_t pos = 0;
         (pos = transcript.find("HTTP/1.1 200", pos)) !=
         std::string::npos;
         pos += 12)
        ++oks;
    EXPECT_EQ(oks, static_cast<size_t>(kFlood) + 2)
        << transcript.substr(0, 300);
    EXPECT_EQ(srv.server.stats().completed, 1u);
    srv.server.drain();
}

TEST(NetDrain, DestructorDrainsWithoutExplicitCall)
{
    // Scope exit alone must tear the stack down cleanly even with a
    // request freshly served (no hangs, no crashes).
    SlowEchoServer srv(std::chrono::milliseconds(1));
    net::HttpClient c("127.0.0.1", srv.server.port());
    Tensor in(1, SlowEchoServer::kCols);
    EXPECT_EQ(
        c.post("/v1/forward", net::encodeTensorBody(in)).status,
        200);
}

TEST(NetFailure, EngineThrowBecomes500NotProcessDeath)
{
    std::atomic<bool> poison{true};
    net::InferenceServerConfig cfg;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(200);
    net::InferenceServer srv(
        [&poison](const std::vector<Tensor> &inputs, QuantMode,
                  Lane) -> std::vector<Tensor> {
            if (poison.load())
                throw std::runtime_error("injected engine failure");
            return inputs;
        },
        4, cfg);
    srv.start();

    net::HttpClient client("127.0.0.1", srv.port());
    Tensor in(2, 4);
    in.raw()[3] = 7.0f;

    const auto failed =
        client.post("/v1/forward", net::encodeTensorBody(in));
    EXPECT_EQ(failed.status, 500);
    EXPECT_NE(failed.body.find("injected engine failure"),
              std::string::npos);

    // Same server, same connection: the next batch succeeds — the
    // dispatcher survived the throw.
    poison = false;
    const auto okResp =
        client.post("/v1/forward", net::encodeTensorBody(in));
    ASSERT_EQ(okResp.status, 200);
    Tensor out;
    ASSERT_TRUE(net::decodeTensorBody(okResp.body, out));
    EXPECT_EQ(out.raw()[3], 7.0f);

    const auto st = srv.stats();
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(srv.schedulerStats().failedBatches, 1u);
    srv.drain();
}

TEST(NetRetryAfter, ScalesWithMeasuredLatencyAndBacklog)
{
    // Nothing measured yet -> the conservative floor.
    EXPECT_EQ(net::retryAfterSeconds(0.0, 100, 4), 1u);
    // Fast engine, shallow backlog -> still the floor.
    EXPECT_EQ(net::retryAfterSeconds(0.01, 4, 4), 1u);
    // Half-second batches, two waves queued -> ceil(0.5 * 3) = 2.
    EXPECT_EQ(net::retryAfterSeconds(0.5, 8, 4), 2u);
    // Deep backlog on a slow engine clamps at 30 s.
    EXPECT_EQ(net::retryAfterSeconds(2.0, 64, 4), 30u);
    // Degenerate maxBatch never divides by zero.
    EXPECT_EQ(net::retryAfterSeconds(1.0, 3, 0), 4u);
}

TEST_F(NetServingFixture, BatchModeFallbackServesBitIdentical)
{
    // cfg.continuous = false must restore the PR 7 run-to-completion
    // path exactly — same wire bytes, batch counters moving again.
    net::InferenceServerConfig cfg;
    cfg.continuous = false;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(500);
    net::InferenceServer srv(pipeline, cfg);
    srv.start();
    EXPECT_FALSE(srv.continuousMode());

    net::HttpClient client("127.0.0.1", srv.port());
    const Tensor in = model.makeInput(9, 912);
    const auto resp =
        client.post("/v1/forward", net::encodeTensorBody(in));
    ASSERT_EQ(resp.status, 200) << resp.body;
    Tensor out;
    ASSERT_TRUE(net::decodeTensorBody(resp.body, out));
    const Tensor ref =
        pipeline.forward(in, QuantMode::WeightsAndActivations);
    ASSERT_EQ(out.rows(), ref.rows());
    for (size_t j = 0; j < ref.size(); ++j)
        ASSERT_EQ(out.raw()[j], ref.raw()[j]) << "elem=" << j;
    EXPECT_GE(srv.schedulerStats().batches, 1u);

    const auto stats = client.get("/v1/stats");
    EXPECT_NE(stats.body.find("\"scheduler\": \"batch\""),
              std::string::npos)
        << stats.body;
    srv.drain();
}

TEST(NetFailure, ContinuousPoisonBecomes500OnlyForThatRequest)
{
    // Continuous-mode counterpart of the batch fault-injection test:
    // a step that throws for a marked request 500s that request
    // alone; the step loop and every other request survive.
    net::InferenceServerConfig cfg;
    net::InferenceServer srv(
        [](size_t, const Tensor &stacked,
           const std::vector<size_t> &starts, QuantMode,
           Lane) -> Tensor {
            for (size_t s = 0; s + 1 < starts.size(); ++s)
                if (stacked.at(starts[s], 0) >= 1e6f)
                    throw std::runtime_error("poisoned step");
            return stacked;
        },
        3, 4, cfg);
    srv.start();
    EXPECT_TRUE(srv.continuousMode());

    net::HttpClient client("127.0.0.1", srv.port());
    Tensor poison(1, 4);
    poison.raw()[0] = 1e6f;
    const auto failed =
        client.post("/v1/forward", net::encodeTensorBody(poison));
    EXPECT_EQ(failed.status, 500);
    EXPECT_NE(failed.body.find("poisoned step"), std::string::npos);

    Tensor in(2, 4);
    in.raw()[5] = 3.0f;
    const auto okResp =
        client.post("/v1/forward", net::encodeTensorBody(in));
    ASSERT_EQ(okResp.status, 200);
    Tensor out;
    ASSERT_TRUE(net::decodeTensorBody(okResp.body, out));
    EXPECT_EQ(out.raw()[5], 3.0f);

    const auto st = srv.stats();
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(srv.continuousSchedulerStats().failedRequests, 1u);

    const auto stats = client.get("/v1/stats");
    EXPECT_NE(stats.body.find("\"scheduler\": \"continuous\""),
              std::string::npos)
        << stats.body;
    EXPECT_NE(stats.body.find("\"failed_requests\": 1"),
              std::string::npos)
        << stats.body;
    srv.drain();
}

} // namespace
} // namespace mokey
