/**
 * @file
 * Network front-end tests: the HTTP wire-format parsers, the binary
 * tensor protocol, and full loopback integration through the epoll
 * server — keep-alive reuse, bit-identical served results, overload
 * shedding at the queue-depth cap, per-client fairness, and graceful
 * drain that completes in-flight requests.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fault.hh"
#include "common/watchdog.hh"
#include "model/config.hh"
#include "model/pipeline.hh"
#include "net/http.hh"
#include "net/http_client.hh"
#include "net/inference_server.hh"
#include "net/socket_server.hh"
#include "quant/exp_dictionary.hh"
#include "test_util.hh"

namespace mokey
{
namespace
{

using net::HttpRequest;
using net::HttpRequestParser;
using net::HttpResponse;
using net::HttpResponseParser;

// ---- wire-format units ----------------------------------------------

TEST(HttpParser, SimpleGet)
{
    HttpRequestParser p;
    const std::string wire =
        "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
    p.feed(wire.data(), wire.size());
    HttpRequest req;
    ASSERT_EQ(p.next(req), HttpRequestParser::Status::Ready);
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.target, "/healthz");
    EXPECT_EQ(req.version, "HTTP/1.1");
    EXPECT_TRUE(req.keepAlive);
    EXPECT_TRUE(req.body.empty());
    ASSERT_NE(req.header("Host"), nullptr);
    EXPECT_EQ(*req.header("host"), "x"); // case-insensitive
    EXPECT_EQ(p.next(req), HttpRequestParser::Status::NeedMore);
}

TEST(HttpParser, PostBodyFedByteByByte)
{
    HttpRequestParser p;
    const std::string wire = "POST /v1/forward HTTP/1.1\r\n"
                             "Content-Length: 5\r\n\r\nhello";
    HttpRequest req;
    for (size_t i = 0; i + 1 < wire.size(); ++i) {
        p.feed(&wire[i], 1);
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::NeedMore)
            << "byte " << i;
    }
    p.feed(&wire[wire.size() - 1], 1);
    ASSERT_EQ(p.next(req), HttpRequestParser::Status::Ready);
    EXPECT_EQ(req.body, "hello");
}

TEST(HttpParser, PipelinedRequestsParseInOrder)
{
    HttpRequestParser p;
    const std::string wire =
        "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nAA"
        "GET /b HTTP/1.1\r\n\r\n";
    p.feed(wire.data(), wire.size());
    HttpRequest req;
    ASSERT_EQ(p.next(req), HttpRequestParser::Status::Ready);
    EXPECT_EQ(req.target, "/a");
    EXPECT_EQ(req.body, "AA");
    ASSERT_EQ(p.next(req), HttpRequestParser::Status::Ready);
    EXPECT_EQ(req.target, "/b");
    EXPECT_EQ(p.next(req), HttpRequestParser::Status::NeedMore);
}

TEST(HttpParser, KeepAliveSemantics)
{
    const auto parse = [](const std::string &wire) {
        HttpRequestParser p;
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        EXPECT_EQ(p.next(req), HttpRequestParser::Status::Ready);
        return req.keepAlive;
    };
    EXPECT_TRUE(parse("GET / HTTP/1.1\r\n\r\n"));
    EXPECT_FALSE(parse("GET / HTTP/1.0\r\n\r\n"));
    EXPECT_FALSE(
        parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
    EXPECT_TRUE(
        parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
}

TEST(HttpParser, RejectsProtocolViolations)
{
    {
        HttpRequestParser p;
        const std::string wire = "NOT-A-REQUEST-LINE\r\n\r\n";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
        EXPECT_EQ(p.errorStatus(), 400);
        // Sticky: the connection is poisoned.
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
    }
    {
        HttpRequestParser p;
        const std::string wire = "GET / HTTP/2.0\r\n\r\n";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
        EXPECT_EQ(p.errorStatus(), 505);
    }
    {
        HttpRequestParser p;
        const std::string wire = "POST / HTTP/1.1\r\n"
                                 "Transfer-Encoding: chunked\r\n"
                                 "\r\n";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
        EXPECT_EQ(p.errorStatus(), 501);
    }
}

TEST(HttpParser, RejectsDuplicateContentLength)
{
    // RFC 9112: conflicting Content-Length values must be rejected;
    // first-wins parsing behind a last-wins proxy is a smuggling
    // desync. Identical duplicates are rejected too (no reason for
    // a legitimate client to send them).
    for (const char *second : {"2", "5"}) {
        HttpRequestParser p;
        const std::string wire = "POST / HTTP/1.1\r\n"
                                 "Content-Length: 5\r\n"
                                 "Content-Length: " +
                                 std::string(second) +
                                 "\r\n\r\nhello";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error)
            << "second CL = " << second;
        EXPECT_EQ(p.errorStatus(), 400);
    }
}

TEST(HttpParser, EnforcesHeaderAndBodyCaps)
{
    net::HttpLimits lim;
    lim.maxHeaderBytes = 64;
    lim.maxBodyBytes = 16;
    {
        HttpRequestParser p(lim);
        const std::string wire = "GET / HTTP/1.1\r\nX-Pad: " +
                                 std::string(100, 'a') + "\r\n\r\n";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
        EXPECT_EQ(p.errorStatus(), 431);
    }
    {
        HttpRequestParser p(lim);
        const std::string wire =
            "POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
        p.feed(wire.data(), wire.size());
        HttpRequest req;
        ASSERT_EQ(p.next(req), HttpRequestParser::Status::Error);
        EXPECT_EQ(p.errorStatus(), 413);
    }
}

TEST(HttpParser, ResponseRoundTripContentLengthAndChunked)
{
    {
        const std::string wire = net::serializeResponse(
            200, {{"Content-Type", "text/plain"}}, "payload", true);
        HttpResponseParser p;
        p.feed(wire.data(), wire.size());
        HttpResponse resp;
        ASSERT_EQ(p.next(resp), HttpResponseParser::Status::Ready);
        EXPECT_EQ(resp.status, 200);
        EXPECT_EQ(resp.body, "payload");
        EXPECT_TRUE(resp.keepAlive);
    }
    {
        std::string wire = net::chunkedHead(200, {}, false);
        wire += net::chunk("abc", 3);
        wire += net::chunk("defgh", 5);
        wire += net::lastChunk();
        HttpResponseParser p;
        HttpResponse resp;
        // Feed in two pieces to exercise the incremental path.
        p.feed(wire.data(), wire.size() / 2);
        ASSERT_EQ(p.next(resp),
                  HttpResponseParser::Status::NeedMore);
        p.feed(wire.data() + wire.size() / 2,
               wire.size() - wire.size() / 2);
        ASSERT_EQ(p.next(resp), HttpResponseParser::Status::Ready);
        EXPECT_EQ(resp.body, "abcdefgh");
        EXPECT_FALSE(resp.keepAlive);
    }
}

TEST(TensorBody, RoundTripAndRejects)
{
    Tensor t(3, 5);
    for (size_t i = 0; i < t.size(); ++i)
        t.raw()[i] = 0.25f * static_cast<float>(i) - 1.0f;
    const std::string body = net::encodeTensorBody(t);
    ASSERT_EQ(body.size(), 8 + 15 * sizeof(float));
    Tensor back;
    ASSERT_TRUE(net::decodeTensorBody(body, back));
    ASSERT_EQ(back.rows(), 3u);
    ASSERT_EQ(back.cols(), 5u);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.raw()[i], back.raw()[i]);

    Tensor junk;
    EXPECT_FALSE(net::decodeTensorBody("", junk));
    EXPECT_FALSE(net::decodeTensorBody("short", junk));
    EXPECT_FALSE(net::decodeTensorBody(body.substr(0, 12), junk));
    std::string zero(body);
    std::memset(&zero[0], 0, 4); // rows = 0
    EXPECT_FALSE(net::decodeTensorBody(zero, junk));
}

TEST(TensorBody, OverflowingDimsRejectedWithoutAllocation)
{
    const auto putLE = [](std::string &s, uint32_t v) {
        for (int i = 0; i < 4; ++i)
            s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    };
    Tensor junk;
    {
        // rows = cols = 2^31: n = 2^62, and 8 + 4n wraps mod 2^64
        // back to 8 — a product-form size check passes an 8-byte
        // body and the decoder would try to allocate 2^62 floats.
        std::string evil;
        putLE(evil, 0x80000000u);
        putLE(evil, 0x80000000u);
        EXPECT_FALSE(net::decodeTensorBody(evil, junk));
        // Same dims with a plausible-looking payload attached.
        evil.append(16, '\0');
        EXPECT_FALSE(net::decodeTensorBody(evil, junk));
    }
    {
        // Payload not a multiple of sizeof(float).
        std::string ragged;
        putLE(ragged, 1);
        putLE(ragged, 1);
        ragged.append(5, '\0');
        EXPECT_FALSE(net::decodeTensorBody(ragged, junk));
    }
    {
        // Float count disagrees with rows*cols.
        std::string extra;
        putLE(extra, 1);
        putLE(extra, 1);
        extra.append(8, '\0'); // two floats for a 1x1 tensor
        EXPECT_FALSE(net::decodeTensorBody(extra, junk));
    }
}

// ---- loopback integration -------------------------------------------

ModelConfig
tinyConfig()
{
    return ModelConfig{"tiny", 2, 32, 2, 128, 256};
}

class NetServingFixture : public ::testing::Test
{
  protected:
    NetServingFixture()
        : model(tinyConfig(), 23),
          exp(1.179, -0.977, 8),
          quantizer(exp),
          pipeline(model, quantizer)
    {
        pipeline.quantizeWeights();
        std::vector<Tensor> batch;
        for (int i = 0; i < 4; ++i)
            batch.push_back(model.makeInput(16, 100 + i));
        pipeline.profileActivations(batch);
    }

    Transformer model;
    ExpDictionary exp;
    Quantizer quantizer;
    QuantizedTransformer pipeline;
};

TEST_F(NetServingFixture, ServedBytesBitIdenticalToDirectForward)
{
    for (const bool stream_rows : {true, false}) {
        net::InferenceServerConfig cfg;
        cfg.streamRows = stream_rows;
        cfg.scheduler.flushTimeout = std::chrono::microseconds(500);
        net::InferenceServer srv(pipeline, cfg);
        srv.start();

        net::HttpClient client("127.0.0.1", srv.port());
        const size_t lens[] = {7, 1, 16, 3};
        for (size_t i = 0; i < 4; ++i) {
            const Tensor in = model.makeInput(lens[i], 800 + i);
            const auto resp = client.post(
                "/v1/forward", net::encodeTensorBody(in));
            ASSERT_EQ(resp.status, 200)
                << "stream=" << stream_rows << " req=" << i << ": "
                << resp.body;
            Tensor out;
            ASSERT_TRUE(net::decodeTensorBody(resp.body, out));
            const Tensor ref = pipeline.forward(
                in, QuantMode::WeightsAndActivations);
            ASSERT_EQ(out.rows(), ref.rows());
            ASSERT_EQ(out.cols(), ref.cols());
            for (size_t j = 0; j < ref.size(); ++j)
                ASSERT_EQ(out.raw()[j], ref.raw()[j])
                    << "stream=" << stream_rows << " req=" << i
                    << " elem=" << j;
        }
        const auto st = srv.stats();
        EXPECT_EQ(st.requests, 4u);
        EXPECT_EQ(st.completed, 4u);
        EXPECT_EQ(st.failed, 0u);
        srv.drain();
    }
}

TEST_F(NetServingFixture, KeepAliveReusesOneConnection)
{
    net::InferenceServer srv(pipeline, {});
    srv.start();
    net::HttpClient client("127.0.0.1", srv.port());
    for (int i = 0; i < 5; ++i) {
        const Tensor in = model.makeInput(4, 300 + i);
        const auto resp =
            client.post("/v1/forward", net::encodeTensorBody(in));
        ASSERT_EQ(resp.status, 200);
        EXPECT_TRUE(resp.keepAlive);
    }
    EXPECT_EQ(client.dials(), 1u);
    EXPECT_EQ(srv.socketStats().accepted, 1u);
    EXPECT_EQ(srv.stats().completed, 5u);
    srv.drain();
}

TEST_F(NetServingFixture, HealthzStatsAndRouteErrors)
{
    net::InferenceServer srv(pipeline, {});
    srv.start();
    net::HttpClient client("127.0.0.1", srv.port());

    const auto health = client.get("/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "ok\n");

    const auto missing = client.get("/nope");
    EXPECT_EQ(missing.status, 404);
    const auto wrongMethod = client.get("/v1/forward");
    EXPECT_EQ(wrongMethod.status, 405);
    const auto badBody = client.post("/v1/forward", "garbage");
    EXPECT_EQ(badBody.status, 400);

    // Wrong width: right framing, wrong cols.
    Tensor narrow(2, 8);
    const auto badCols = client.post(
        "/v1/forward", net::encodeTensorBody(narrow));
    EXPECT_EQ(badCols.status, 400);

    const auto stats = client.get("/v1/stats");
    EXPECT_EQ(stats.status, 200);
    EXPECT_NE(stats.body.find("\"bad_requests\": 4"),
              std::string::npos)
        << stats.body;
    EXPECT_NE(stats.body.find("\"queue_depth\""),
              std::string::npos);
    srv.drain();
}

/** Functor-engine server: echo with a configurable service time. */
struct SlowEchoServer
{
    static constexpr size_t kCols = 8;

    explicit SlowEchoServer(std::chrono::milliseconds delay,
                            net::InferenceServerConfig cfg = {})
        : server(
              [delay](const std::vector<Tensor> &inputs, QuantMode,
                      Lane) {
                  std::this_thread::sleep_for(delay);
                  return inputs; // echo
              },
              kCols, cfg)
    {
        server.start();
    }

    net::InferenceServer server;
};

TEST(NetAdmission, OverloadShedsWith503AtQueueDepthCap)
{
    net::InferenceServerConfig cfg;
    cfg.maxQueueDepth = 2;
    cfg.scheduler.maxBatch = 1;
    SlowEchoServer srv(std::chrono::milliseconds(100), cfg);

    constexpr int kClients = 8;
    std::atomic<int> ok{0}, shed{0}, other{0};
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            net::HttpClient c("127.0.0.1", srv.server.port());
            Tensor in(2, SlowEchoServer::kCols);
            in.raw()[0] = static_cast<float>(i);
            const auto resp =
                c.post("/v1/forward", net::encodeTensorBody(in));
            if (resp.status == 200) {
                Tensor out;
                ASSERT_TRUE(net::decodeTensorBody(resp.body, out));
                EXPECT_EQ(out.raw()[0], static_cast<float>(i));
                ++ok;
            } else if (resp.status == 503) {
                EXPECT_NE(resp.header("Retry-After"), nullptr);
                ++shed;
            } else {
                ++other;
            }
        });
    }
    for (auto &c : clients)
        c.join();

    EXPECT_EQ(other.load(), 0);
    EXPECT_GE(ok.load(), 1);
    EXPECT_GE(shed.load(), 1) << "cap never engaged";
    EXPECT_EQ(ok.load() + shed.load(), kClients);
    const auto st = srv.server.stats();
    EXPECT_EQ(st.completed, static_cast<uint64_t>(ok.load()));
    EXPECT_EQ(st.shed, static_cast<uint64_t>(shed.load()));
    srv.server.drain();
}

TEST(NetAdmission, PerPeerConnectionCapRefusesExtraConnections)
{
    net::InferenceServerConfig cfg;
    cfg.socket.maxConnectionsPerPeer = 1;
    SlowEchoServer srv(std::chrono::milliseconds(0), cfg);

    net::HttpClient first("127.0.0.1", srv.server.port());
    EXPECT_EQ(first.get("/healthz").status, 200);

    // The first client's keep-alive connection occupies the peer's
    // whole allowance: a second concurrent connection is refused at
    // accept (immediate close -> the client sees a dead socket).
    net::HttpClient second("127.0.0.1", srv.server.port(),
                           std::chrono::milliseconds(2000));
    EXPECT_THROW(second.get("/healthz"), std::runtime_error);
    EXPECT_GE(srv.server.socketStats().peerRefused, 1u);

    // Still one request of service for the first client.
    EXPECT_EQ(first.get("/healthz").status, 200);
    srv.server.drain();
}

/**
 * Raw pipelined exchange: connect, send @p wire in one write, read
 * until the server closes. Used to park a second request behind an
 * in-flight one — something the one-at-a-time HttpClient cannot do.
 */
std::string
rawPipelinedExchange(uint16_t port, const std::string &wire,
                     const std::function<void()> &afterSend)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    timeval tv{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    EXPECT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    afterSend();
    std::string got;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        got.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return got;
}

TEST(NetDrain, GracefulDrainCompletesInflightAndShedsNew)
{
    net::InferenceServerConfig cfg;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(200);
    SlowEchoServer srv(std::chrono::milliseconds(150), cfg);
    const uint16_t port = srv.server.port();

    Tensor in(3, SlowEchoServer::kCols);
    for (size_t i = 0; i < in.size(); ++i)
        in.raw()[i] = static_cast<float>(i) * 0.5f;
    const std::string body = net::encodeTensorBody(in);
    const std::string post =
        "POST /v1/forward HTTP/1.1\r\nHost: t\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;

    // Two pipelined requests in one write: the first is admitted
    // (slow engine keeps it in flight), the second stays buffered
    // behind it. Drain begins while #1 runs, so #1 must complete
    // with full data and #2 must be shed with 503.
    const std::string wire = post + post;
    const auto transcript = rawPipelinedExchange(
        port, wire, [&] {
            while (srv.server.queueDepth() == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            srv.server.beginDrain();
        });

    const size_t okPos = transcript.find("HTTP/1.1 200");
    const size_t shedPos = transcript.find("HTTP/1.1 503");
    ASSERT_NE(okPos, std::string::npos) << transcript.substr(0, 200);
    ASSERT_NE(shedPos, std::string::npos)
        << transcript.substr(0, 200);
    EXPECT_LT(okPos, shedPos) << "responses out of order";
    // The completed response carries the full echoed tensor.
    EXPECT_NE(transcript.find("application/x-mokey-tensor"),
              std::string::npos);

    srv.server.drain(); // blocks until the loop exits
    const auto st = srv.server.socketStats();
    EXPECT_GE(st.drainSheds, 1u);
    EXPECT_EQ(srv.server.stats().completed, 1u);

    // Post-drain, the listener is gone: connects fail fast.
    net::HttpClient late("127.0.0.1", port,
                         std::chrono::milliseconds(2000));
    EXPECT_THROW(late.get("/healthz"), std::runtime_error);
}

TEST(NetBackpressure, InflightFloodPausesReadsThenRecovers)
{
    // While a slow request is in flight the parser is not advanced,
    // so pipelined bytes accumulate unparsed. With tiny limits the
    // flood below crosses the receive cap (maxHeaderBytes +
    // maxBodyBytes = 1 KiB), forcing the loop to pause reads on the
    // connection; every buffered request must still be served once
    // the in-flight response completes (pause must not deadlock or
    // drop bytes).
    net::InferenceServerConfig cfg;
    cfg.socket.limits.maxHeaderBytes = 512;
    cfg.socket.limits.maxBodyBytes = 512;
    cfg.maxQueueDepth = 64;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(200);
    SlowEchoServer srv(std::chrono::milliseconds(100), cfg);

    Tensor in(2, SlowEchoServer::kCols);
    const std::string body = net::encodeTensorBody(in);
    const std::string post =
        "POST /v1/forward HTTP/1.1\r\nHost: t\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    constexpr int kFlood = 40; // ~36 bytes each: well past the cap
    std::string wire = post;
    for (int i = 0; i < kFlood; ++i)
        wire += "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    wire += "GET /healthz HTTP/1.1\r\nHost: t\r\n"
            "Connection: close\r\n\r\n";
    ASSERT_GT(wire.size() - post.size(),
              cfg.socket.limits.maxHeaderBytes +
                  cfg.socket.limits.maxBodyBytes);

    const auto transcript =
        rawPipelinedExchange(srv.server.port(), wire, [] {});

    size_t oks = 0;
    for (size_t pos = 0;
         (pos = transcript.find("HTTP/1.1 200", pos)) !=
         std::string::npos;
         pos += 12)
        ++oks;
    EXPECT_EQ(oks, static_cast<size_t>(kFlood) + 2)
        << transcript.substr(0, 300);
    EXPECT_EQ(srv.server.stats().completed, 1u);
    srv.server.drain();
}

TEST(NetDrain, DestructorDrainsWithoutExplicitCall)
{
    // Scope exit alone must tear the stack down cleanly even with a
    // request freshly served (no hangs, no crashes).
    SlowEchoServer srv(std::chrono::milliseconds(1));
    net::HttpClient c("127.0.0.1", srv.server.port());
    Tensor in(1, SlowEchoServer::kCols);
    EXPECT_EQ(
        c.post("/v1/forward", net::encodeTensorBody(in)).status,
        200);
}

TEST(NetFailure, EngineThrowBecomes500NotProcessDeath)
{
    std::atomic<bool> poison{true};
    net::InferenceServerConfig cfg;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(200);
    net::InferenceServer srv(
        [&poison](const std::vector<Tensor> &inputs, QuantMode,
                  Lane) -> std::vector<Tensor> {
            if (poison.load())
                throw std::runtime_error("injected engine failure");
            return inputs;
        },
        4, cfg);
    srv.start();

    net::HttpClient client("127.0.0.1", srv.port());
    Tensor in(2, 4);
    in.raw()[3] = 7.0f;

    const auto failed =
        client.post("/v1/forward", net::encodeTensorBody(in));
    EXPECT_EQ(failed.status, 500);
    EXPECT_NE(failed.body.find("injected engine failure"),
              std::string::npos);

    // Same server, same connection: the next batch succeeds — the
    // dispatcher survived the throw.
    poison = false;
    const auto okResp =
        client.post("/v1/forward", net::encodeTensorBody(in));
    ASSERT_EQ(okResp.status, 200);
    Tensor out;
    ASSERT_TRUE(net::decodeTensorBody(okResp.body, out));
    EXPECT_EQ(out.raw()[3], 7.0f);

    const auto st = srv.stats();
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(srv.schedulerStats().failedBatches, 1u);
    srv.drain();
}

TEST(NetRetryAfter, ScalesWithMeasuredLatencyAndBacklog)
{
    // Nothing measured yet but a deep backlog: the nominal
    // cold-start wave cost scales the hint with depth instead of
    // collapsing to the clamp floor — ceil(0.25 * (100/4 + 1)) = 7.
    EXPECT_EQ(net::retryAfterSeconds(0.0, 100, 4), 7u);
    // Nothing measured, shallow or empty backlog -> the floor.
    EXPECT_EQ(net::retryAfterSeconds(0.0, 4, 4), 1u);
    EXPECT_EQ(net::retryAfterSeconds(0.0, 0, 4), 1u);
    // Cold start still clamps at 30 s for absurd depth.
    EXPECT_EQ(net::retryAfterSeconds(0.0, 4000, 4), 30u);
    // Fast engine, shallow backlog -> still the floor.
    EXPECT_EQ(net::retryAfterSeconds(0.01, 4, 4), 1u);
    // Half-second batches, two waves queued -> ceil(0.5 * 3) = 2.
    EXPECT_EQ(net::retryAfterSeconds(0.5, 8, 4), 2u);
    // Deep backlog on a slow engine clamps at 30 s.
    EXPECT_EQ(net::retryAfterSeconds(2.0, 64, 4), 30u);
    // Degenerate maxBatch never divides by zero.
    EXPECT_EQ(net::retryAfterSeconds(1.0, 3, 0), 4u);
}

TEST_F(NetServingFixture, BatchModeFallbackServesBitIdentical)
{
    // cfg.continuous = false must restore the PR 7 run-to-completion
    // path exactly — same wire bytes, batch counters moving again.
    net::InferenceServerConfig cfg;
    cfg.continuous = false;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(500);
    net::InferenceServer srv(pipeline, cfg);
    srv.start();
    EXPECT_FALSE(srv.continuousMode());

    net::HttpClient client("127.0.0.1", srv.port());
    const Tensor in = model.makeInput(9, 912);
    const auto resp =
        client.post("/v1/forward", net::encodeTensorBody(in));
    ASSERT_EQ(resp.status, 200) << resp.body;
    Tensor out;
    ASSERT_TRUE(net::decodeTensorBody(resp.body, out));
    const Tensor ref =
        pipeline.forward(in, QuantMode::WeightsAndActivations);
    ASSERT_EQ(out.rows(), ref.rows());
    for (size_t j = 0; j < ref.size(); ++j)
        ASSERT_EQ(out.raw()[j], ref.raw()[j]) << "elem=" << j;
    EXPECT_GE(srv.schedulerStats().batches, 1u);

    const auto stats = client.get("/v1/stats");
    EXPECT_NE(stats.body.find("\"scheduler\": \"batch\""),
              std::string::npos)
        << stats.body;
    srv.drain();
}

TEST(NetFailure, ContinuousPoisonBecomes500OnlyForThatRequest)
{
    // Continuous-mode counterpart of the batch fault-injection test:
    // a step that throws for a marked request 500s that request
    // alone; the step loop and every other request survive.
    net::InferenceServerConfig cfg;
    net::InferenceServer srv(
        [](size_t, const Tensor &stacked,
           const std::vector<size_t> &starts, QuantMode,
           Lane) -> Tensor {
            for (size_t s = 0; s + 1 < starts.size(); ++s)
                if (stacked.at(starts[s], 0) >= 1e6f)
                    throw std::runtime_error("poisoned step");
            return stacked;
        },
        3, 4, cfg);
    srv.start();
    EXPECT_TRUE(srv.continuousMode());

    net::HttpClient client("127.0.0.1", srv.port());
    Tensor poison(1, 4);
    poison.raw()[0] = 1e6f;
    const auto failed =
        client.post("/v1/forward", net::encodeTensorBody(poison));
    EXPECT_EQ(failed.status, 500);
    EXPECT_NE(failed.body.find("poisoned step"), std::string::npos);

    Tensor in(2, 4);
    in.raw()[5] = 3.0f;
    const auto okResp =
        client.post("/v1/forward", net::encodeTensorBody(in));
    ASSERT_EQ(okResp.status, 200);
    Tensor out;
    ASSERT_TRUE(net::decodeTensorBody(okResp.body, out));
    EXPECT_EQ(out.raw()[5], 3.0f);

    const auto st = srv.stats();
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(srv.continuousSchedulerStats().failedRequests, 1u);

    const auto stats = client.get("/v1/stats");
    EXPECT_NE(stats.body.find("\"scheduler\": \"continuous\""),
              std::string::npos)
        << stats.body;
    EXPECT_NE(stats.body.find("\"failed_requests\": 1"),
              std::string::npos)
        << stats.body;
    srv.drain();
}

// ---- deadlines ------------------------------------------------------

TEST(NetDeadline, ExpiredWhileQueuedBecomes504)
{
    // One-batch-at-a-time slow engine: request A occupies the
    // dispatcher for ~200 ms while B waits queued with a 10 ms
    // deadline. By the time the dispatcher pops B its deadline has
    // passed — B must get a 504 without ever touching the engine.
    net::InferenceServerConfig cfg;
    cfg.scheduler.maxBatch = 1;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(200);
    SlowEchoServer srv(std::chrono::milliseconds(200), cfg);

    Tensor in(1, SlowEchoServer::kCols);
    in.raw()[0] = 42.0f;
    const std::string body = net::encodeTensorBody(in);

    std::thread first([&] {
        net::HttpClient a("127.0.0.1", srv.server.port());
        const auto resp = a.post("/v1/forward", body);
        EXPECT_EQ(resp.status, 200);
    });
    while (srv.server.queueDepth() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    net::HttpClient b("127.0.0.1", srv.server.port());
    const auto expired = b.request(
        "POST", "/v1/forward", {{"X-Mokey-Deadline-Ms", "10"}},
        body);
    EXPECT_EQ(expired.status, 504) << expired.body;
    first.join();

    const auto st = srv.server.stats();
    EXPECT_EQ(st.expired, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_GE(srv.server.schedulerStats().expiredRequests, 1u);

    const auto stats = b.get("/v1/stats");
    EXPECT_NE(stats.body.find("\"expired\": 1"), std::string::npos)
        << stats.body;
    srv.server.drain();
}

TEST(NetDeadline, GenerousDeadlineServesNormally)
{
    SlowEchoServer srv(std::chrono::milliseconds(1));
    net::HttpClient client("127.0.0.1", srv.server.port());
    Tensor in(2, SlowEchoServer::kCols);
    for (size_t i = 0; i < in.size(); ++i)
        in.raw()[i] = 0.5f * static_cast<float>(i);
    const auto resp = client.request(
        "POST", "/v1/forward", {{"X-Mokey-Deadline-Ms", "60000"}},
        net::encodeTensorBody(in));
    ASSERT_EQ(resp.status, 200) << resp.body;
    Tensor out;
    ASSERT_TRUE(net::decodeTensorBody(resp.body, out));
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(out.raw()[i], in.raw()[i]);
    EXPECT_EQ(srv.server.stats().expired, 0u);
    srv.server.drain();
}

TEST(NetDeadline, HugeDeadlineClampedServesNormally)
{
    // LLONG_MAX milliseconds used to overflow the steady_clock
    // addition (UB; the wrapped deadline instantly 504'd the most
    // patient client). The budget is clamped, so a huge value
    // behaves exactly like no deadline.
    SlowEchoServer srv(std::chrono::milliseconds(1));
    net::HttpClient client("127.0.0.1", srv.server.port());
    Tensor in(1, SlowEchoServer::kCols);
    in.raw()[0] = 7.0f;
    const auto resp = client.request(
        "POST", "/v1/forward",
        {{"X-Mokey-Deadline-Ms", "9223372036854775807"}},
        net::encodeTensorBody(in));
    ASSERT_EQ(resp.status, 200) << resp.body;
    EXPECT_EQ(srv.server.stats().expired, 0u);
    srv.server.drain();
}

TEST(NetDeadline, JunkDeadlineHeaderIs400)
{
    SlowEchoServer srv(std::chrono::milliseconds(0));
    net::HttpClient client("127.0.0.1", srv.server.port());
    Tensor in(1, SlowEchoServer::kCols);
    const std::string body = net::encodeTensorBody(in);
    for (const char *junk : {"abc", "-5", "12x", ""}) {
        const auto resp = client.request(
            "POST", "/v1/forward", {{"X-Mokey-Deadline-Ms", junk}},
            body);
        EXPECT_EQ(resp.status, 400) << "value '" << junk << "'";
    }
    EXPECT_EQ(srv.server.stats().requests, 4u);
    EXPECT_EQ(srv.server.stats().badRequests, 4u);
    srv.server.drain();
}

// ---- three-state health ---------------------------------------------

TEST(NetHealth, DrainingReportedTheInstantDrainBegins)
{
    net::InferenceServerConfig cfg;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(200);
    SlowEchoServer srv(std::chrono::milliseconds(150), cfg);
    EXPECT_EQ(srv.server.health(), net::ServerHealth::Ok);

    // Park a slow request so the event loop stays alive through the
    // drain window, with a health probe connection opened BEFORE the
    // drain begins (new connects are refused after).
    net::HttpClient probe("127.0.0.1", srv.server.port());
    EXPECT_EQ(probe.get("/healthz").status, 200);

    Tensor in(1, SlowEchoServer::kCols);
    std::thread inflight([&] {
        net::HttpClient c("127.0.0.1", srv.server.port());
        const auto resp =
            c.post("/v1/forward", net::encodeTensorBody(in));
        EXPECT_EQ(resp.status, 200);
    });
    while (srv.server.queueDepth() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    srv.server.beginDrain();
    // The flag flips synchronously — no waiting for the event loop
    // to process the wakeup (the load-balancer race the satellite
    // fix closes).
    EXPECT_EQ(srv.server.health(), net::ServerHealth::Draining);

    // On the wire, a poll during drain sees a 503 (the handler's
    // "draining" or the socket layer's drain shed) — unless the
    // loop already closed the idle probe connection, which reads
    // the same to a load balancer: stop routing here.
    try {
        const auto polled = probe.get("/healthz");
        EXPECT_EQ(polled.status, 503);
    } catch (const std::runtime_error &) {
    }

    inflight.join();
    srv.server.drain();
    EXPECT_EQ(srv.server.health(), net::ServerHealth::Draining);
    EXPECT_EQ(srv.server.stats().completed, 1u);
}

TEST(NetHealth, WatchdogDegradedThenRecovers)
{
    // A 100 ms watchdog budget and a 400 ms engine stall: /healthz
    // must transition ok -> degraded (naming the stalled loop) ->
    // ok, serving throughout (the event loop is not the stalled
    // thread). The env knob stays set for the whole test scope: the
    // budget is read when the dispatcher THREAD registers with the
    // watchdog, and that races the constructor returning — an
    // unsetenv right after construction can beat the registration
    // and silently restore the 2000 ms default.
    ::setenv("MOKEY_WATCHDOG_MS", "100", 1);
    struct EnvClear
    {
        ~EnvClear() { ::unsetenv("MOKEY_WATCHDOG_MS"); }
    } envClear;
    net::InferenceServerConfig cfg;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(200);
    SlowEchoServer srv(std::chrono::milliseconds(400), cfg);
    EXPECT_EQ(srv.server.health(), net::ServerHealth::Ok);

    net::HttpClient probe("127.0.0.1", srv.server.port());
    Tensor in(1, SlowEchoServer::kCols);
    std::thread inflight([&] {
        net::HttpClient c("127.0.0.1", srv.server.port());
        EXPECT_EQ(
            c.post("/v1/forward", net::encodeTensorBody(in)).status,
            200);
    });
    // Join even when an ASSERT bails out of the test body; a
    // joinable thread's destructor would terminate the process.
    struct Joiner
    {
        std::thread &t;
        ~Joiner()
        {
            if (t.joinable())
                t.join();
        }
    } joiner{inflight};

    // The dispatcher wedges inside the 400 ms forward; past the
    // 100 ms budget health() flips to Degraded.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
    bool sawDegraded = false;
    while (std::chrono::steady_clock::now() < deadline) {
        if (srv.server.health() == net::ServerHealth::Degraded) {
            sawDegraded = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(sawDegraded) << "stall never detected";
    EXPECT_NE(srv.server.healthCause().find("stalled"),
              std::string::npos)
        << srv.server.healthCause();

    // The event loop still serves while the dispatcher is wedged,
    // and /healthz tells the truth about it.
    const auto resp = probe.get("/healthz");
    EXPECT_EQ(resp.status, 503);
    EXPECT_NE(resp.body.find("degraded"), std::string::npos)
        << resp.body;

    inflight.join();
    // The dispatcher beats again once the stall clears; fresh
    // budget so a slow degraded-detection can't starve this poll.
    const auto recoverBy = std::chrono::steady_clock::now() +
                           std::chrono::seconds(5);
    bool sawOk = false;
    while (std::chrono::steady_clock::now() < recoverBy) {
        if (srv.server.health() == net::ServerHealth::Ok) {
            sawOk = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(sawOk) << "health never recovered";
    EXPECT_EQ(probe.get("/healthz").status, 200);
    EXPECT_GE(Watchdog::instance().stallEvents(), 1u);

    const auto stats = probe.get("/v1/stats");
    EXPECT_NE(stats.body.find("\"watchdog_stall_events\""),
              std::string::npos)
        << stats.body;
    srv.server.drain();
}

// ---- client retry and re-dial ---------------------------------------

TEST(NetClient, RedialsExactlyOnceAfterServerRestart)
{
    auto first = std::make_unique<SlowEchoServer>(
        std::chrono::milliseconds(0));
    const uint16_t port = first->server.port();
    net::HttpClient client("127.0.0.1", port,
                           std::chrono::milliseconds(2000));
    EXPECT_EQ(client.get("/healthz").status, 200);
    EXPECT_EQ(client.dials(), 1u);
    first->server.drain();
    first.reset();

    // Same port, new server (SO_REUSEADDR makes the rebind
    // immediate): the client's kept-alive connection is stale, and
    // one transparent re-dial — exactly one — must recover it.
    net::InferenceServerConfig cfg;
    cfg.socket.port = port;
    SlowEchoServer second(std::chrono::milliseconds(0), cfg);
    ASSERT_EQ(second.server.port(), port);
    EXPECT_EQ(client.get("/healthz").status, 200);
    EXPECT_EQ(client.dials(), 2u);
    second.server.drain();
}

TEST(NetClient, DeadPeerFailsFastInsteadOfHanging)
{
    // Reserve a port, then free it so nothing listens there.
    uint16_t port;
    {
        SlowEchoServer reserve(std::chrono::milliseconds(0));
        port = reserve.server.port();
        reserve.server.drain();
    }
    net::HttpClient client("127.0.0.1", port,
                           std::chrono::milliseconds(1000));
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(client.get("/healthz"), std::runtime_error);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::seconds(10))
        << "a dead peer should error, not hang";
}

/** Scripted raw HTTP peer: answers each request on one accepted
 *  connection with the next canned response, then closes. */
struct ScriptedServer
{
    explicit ScriptedServer(std::vector<std::string> responses)
        : canned(std::move(responses))
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof addr),
                  0);
        EXPECT_EQ(::listen(fd, 4), 0);
        socklen_t len = sizeof addr;
        ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        boundPort = ntohs(addr.sin_port);
        worker = std::thread([this] { serve(); });
    }

    ~ScriptedServer()
    {
        if (worker.joinable())
            worker.join();
        if (fd >= 0)
            ::close(fd);
    }

    void serve()
    {
        const int c = ::accept(fd, nullptr, nullptr);
        if (c < 0)
            return;
        timeval tv{10, 0};
        ::setsockopt(c, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        std::string acc;
        char buf[4096];
        for (const std::string &resp : canned) {
            while (acc.find("\r\n\r\n") == std::string::npos) {
                const ssize_t n = ::recv(c, buf, sizeof buf, 0);
                if (n <= 0) {
                    ::close(c);
                    return;
                }
                acc.append(buf, static_cast<size_t>(n));
            }
            acc.erase(0, acc.find("\r\n\r\n") + 4);
            ::send(c, resp.data(), resp.size(), MSG_NOSIGNAL);
        }
        ::close(c);
    }

    uint16_t port() const { return boundPort; }

    std::vector<std::string> canned;
    int fd = -1;
    uint16_t boundPort = 0;
    std::thread worker;
};

TEST(NetClient, RetryWithBackoffRecoversFrom503)
{
    // A shed (503 + Retry-After: 0) followed by success on the same
    // connection: requestWithRetry must sleep the hint, resend, and
    // hand back the 200 — one retry, one dial.
    ScriptedServer peer(
        {"HTTP/1.1 503 Service Unavailable\r\n"
         "Retry-After: 0\r\nContent-Length: 5\r\n\r\nbusy\n",
         "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\ndone\n"});
    net::HttpClient client("127.0.0.1", peer.port(),
                           std::chrono::milliseconds(5000));
    net::HttpRetryPolicy policy;
    policy.attempts = 3;
    policy.initialBackoff = std::chrono::milliseconds(5);
    const auto resp =
        client.requestWithRetry("GET", "/x", {}, "", policy);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "done\n");
    EXPECT_EQ(client.retries(), 1u);
    EXPECT_EQ(client.dials(), 1u);
}

TEST(NetClient, HugeRetryAfterClampedToMaxBackoff)
{
    // A hostile Retry-After near LLONG_MAX used to overflow in the
    // seconds→ms conversion before the maxBackoff clamp could apply.
    // The wait must be bounded by maxBackoff, not the server's hint.
    ScriptedServer peer(
        {"HTTP/1.1 503 Service Unavailable\r\n"
         "Retry-After: 9223372036854775807\r\n"
         "Content-Length: 5\r\n\r\nbusy\n",
         "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\ndone\n"});
    net::HttpClient client("127.0.0.1", peer.port(),
                           std::chrono::milliseconds(5000));
    net::HttpRetryPolicy policy;
    policy.attempts = 3;
    policy.initialBackoff = std::chrono::milliseconds(5);
    policy.maxBackoff = std::chrono::milliseconds(50);
    const auto t0 = std::chrono::steady_clock::now();
    const auto resp =
        client.requestWithRetry("GET", "/x", {}, "", policy);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(client.retries(), 1u);
    EXPECT_LT(elapsed, std::chrono::seconds(2))
        << "waited the server's bogus hint instead of maxBackoff";
}

TEST(NetClient, RetryExhaustionReturnsTheLast503)
{
    ScriptedServer peer(
        {"HTTP/1.1 503 Service Unavailable\r\n"
         "Retry-After: 0\r\nContent-Length: 5\r\n\r\nbusy\n",
         "HTTP/1.1 503 Service Unavailable\r\n"
         "Retry-After: 0\r\nContent-Length: 5\r\n\r\nbusy\n"});
    net::HttpClient client("127.0.0.1", peer.port(),
                           std::chrono::milliseconds(5000));
    net::HttpRetryPolicy policy;
    policy.attempts = 2;
    policy.initialBackoff = std::chrono::milliseconds(5);
    const auto resp =
        client.requestWithRetry("GET", "/x", {}, "", policy);
    EXPECT_EQ(resp.status, 503);
    EXPECT_EQ(client.retries(), 1u);
}

TEST(NetClient, TransportRetriesThenThrowOnDeadPeer)
{
    uint16_t port;
    {
        SlowEchoServer reserve(std::chrono::milliseconds(0));
        port = reserve.server.port();
        reserve.server.drain();
    }
    net::HttpClient client("127.0.0.1", port,
                           std::chrono::milliseconds(500));
    net::HttpRetryPolicy policy;
    policy.attempts = 3;
    policy.initialBackoff = std::chrono::milliseconds(1);
    EXPECT_THROW(
        client.requestWithRetry("GET", "/healthz", {}, "", policy),
        std::runtime_error);
    EXPECT_EQ(client.retries(), 2u) << "two backoff cycles before "
                                       "the final attempt's throw";
}

// ---- chaos ----------------------------------------------------------
// FaultArmGuard (tests/test_util.hh) arms the injector per test and
// defers to an env-armed MOKEY_FAULT sweep.

TEST_F(NetServingFixture, ChaosEngineFaultsMapToExactRequests)
{
    // The acceptance bar for fault injection: with the engine-
    // dispatch site armed at a fixed seed, EXACTLY the requests
    // whose dispatches fired fail (500), everyone else is served
    // bit-identically, and the server never dies. Batch mode with
    // serial requests makes the mapping airtight: one request per
    // batch, no isolation retries, so fired-count delta over a
    // request <=> that request's engine threw.
    constexpr int kRequests = 24;
    std::vector<Tensor> ins, refs;
    for (int i = 0; i < kRequests; ++i)
        ins.push_back(model.makeInput(2, 500 + i));
    // References are computed BEFORE arming our spec; under an env
    // sweep the injector is already hot, so ride out any injected
    // throws — the retry re-rolls fresh check indices.
    for (const Tensor &in : ins) {
        for (int tries = 0;; ++tries) {
            try {
                refs.push_back(pipeline.forward(
                    in, QuantMode::WeightsAndActivations));
                break;
            } catch (const std::runtime_error &) {
                ASSERT_LT(tries, 500) << "reference forward never "
                                         "survived the env faults";
            }
        }
    }

    FaultArmGuard guard("engine:0.02:4242");
    auto &inj = FaultInjector::instance();
    const bool exactMapping =
        inj.armed(FaultSite::EngineDispatch) &&
        !inj.armed(FaultSite::SockReset);

    net::InferenceServerConfig cfg;
    cfg.continuous = false;
    cfg.scheduler.maxBatch = 1;
    cfg.scheduler.flushTimeout = std::chrono::microseconds(200);
    net::InferenceServer srv(pipeline, cfg);
    srv.start();
    net::HttpClient client("127.0.0.1", srv.port());

    uint64_t failed = 0, ok = 0, transport = 0;
    for (int i = 0; i < kRequests; ++i) {
        const uint64_t before = inj.fired(FaultSite::EngineDispatch);
        net::HttpResponse resp;
        try {
            resp = client.post("/v1/forward",
                               net::encodeTensorBody(ins[i]));
        } catch (const std::runtime_error &) {
            ++transport; // injected connection resets (env sweep)
            continue;
        }
        const uint64_t hits =
            inj.fired(FaultSite::EngineDispatch) - before;
        if (resp.status == 200) {
            if (exactMapping)
                EXPECT_EQ(hits, 0u) << "request " << i
                                    << " absorbed a fired fault";
            Tensor out;
            ASSERT_TRUE(net::decodeTensorBody(resp.body, out));
            const Tensor &ref = refs[i];
            for (size_t j = 0; j < ref.size(); ++j)
                ASSERT_EQ(out.raw()[j], ref.raw()[j])
                    << "req=" << i << " elem=" << j;
            ++ok;
        } else {
            ASSERT_GE(resp.status, 500) << resp.body;
            if (exactMapping) {
                EXPECT_GE(hits, 1u)
                    << "request " << i
                    << " failed without a fired fault";
                EXPECT_NE(resp.body.find("injected fault"),
                          std::string::npos)
                    << resp.body;
            }
            ++failed;
        }
    }

    // The server survived the whole run; the books balance unless
    // an env-armed sockreset made the client resend requests the
    // server had already counted.
    const auto st = srv.stats();
    if (!inj.armed(FaultSite::SockReset)) {
        EXPECT_EQ(st.completed, ok);
        EXPECT_EQ(st.failed, failed);
    }
    if (guard.owned) {
        EXPECT_GE(ok, 1u);
        EXPECT_GE(failed, 1u) << "rate 0.02 over " << kRequests
                              << " requests never fired";
        EXPECT_EQ(transport, 0u);
    }
    srv.drain();
}

TEST(NetChaos, ShortReadsAndWritesNeverChangeBytes)
{
    // sockread/sockwrite only fragment I/O: with both armed hot,
    // every request must still complete 200 with bit-exact payload
    // (the event loop re-arms and finishes partial reads/writes).
    FaultArmGuard guard("sockread:1.0:7,sockwrite:0.5:7");
    auto &inj = FaultInjector::instance();
    const bool resetsPossible = inj.armed(FaultSite::SockReset);

    SlowEchoServer srv(std::chrono::milliseconds(0));
    net::HttpClient client("127.0.0.1", srv.server.port());

    uint64_t ok = 0;
    constexpr int kRequests = 12;
    for (int i = 0; i < kRequests; ++i) {
        Tensor in(3, SlowEchoServer::kCols);
        for (size_t j = 0; j < in.size(); ++j)
            in.raw()[j] = static_cast<float>(i * 100 + j) * 0.25f;
        net::HttpResponse resp;
        try {
            resp = client.post("/v1/forward",
                               net::encodeTensorBody(in));
        } catch (const std::runtime_error &) {
            ASSERT_TRUE(resetsPossible)
                << "transport error without sockreset armed";
            continue;
        }
        if (resp.status != 200) {
            ASSERT_GE(resp.status, 500);
            continue;
        }
        Tensor out;
        ASSERT_TRUE(net::decodeTensorBody(resp.body, out));
        for (size_t j = 0; j < in.size(); ++j)
            ASSERT_EQ(out.raw()[j], in.raw()[j])
                << "req=" << i << " elem=" << j;
        ++ok;
    }
    if (guard.owned) {
        EXPECT_EQ(ok, static_cast<uint64_t>(kRequests));
        EXPECT_GE(inj.fired(FaultSite::SockRead), 1u);
        EXPECT_GE(inj.fired(FaultSite::SockWrite), 1u);
    } else {
        EXPECT_GE(ok, 1u) << "server stopped serving under faults";
    }
    srv.server.drain();
}

TEST(NetChaos, ConnectionResetsFailOnlyTheirConnection)
{
    // sockreset drops connections on read-readiness. Clients see
    // transport errors; the server itself must keep accepting and
    // serving fresh connections throughout.
    FaultArmGuard guard("sockreset:0.3:11");

    SlowEchoServer srv(std::chrono::milliseconds(0));
    uint64_t ok = 0, reset = 0;
    constexpr int kRequests = 20;
    for (int i = 0; i < kRequests; ++i) {
        // Fresh client per request: a reset poisons one connection
        // only, never the listener.
        net::HttpClient client("127.0.0.1", srv.server.port(),
                               std::chrono::milliseconds(2000));
        Tensor in(1, SlowEchoServer::kCols);
        in.raw()[0] = static_cast<float>(i);
        try {
            const auto resp = client.post(
                "/v1/forward", net::encodeTensorBody(in));
            if (resp.status != 200)
                continue;
            Tensor out;
            ASSERT_TRUE(net::decodeTensorBody(resp.body, out));
            EXPECT_EQ(out.raw()[0], static_cast<float>(i));
            ++ok;
        } catch (const std::runtime_error &) {
            ++reset;
        }
    }
    EXPECT_GE(ok, 1u) << "no request survived the reset chaos";
    if (guard.owned)
        EXPECT_GE(reset, 1u) << "rate 0.3 never dropped a "
                                "connection in 20 requests";
    srv.server.drain();
}

} // namespace
} // namespace mokey
