/**
 * @file
 * Tests for the transformer substrate: geometry, forward pass,
 * profiler, quantized pipeline, synthetic tasks, workload extraction.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "model/config.hh"
#include "model/pipeline.hh"
#include "model/profiler.hh"
#include "model/tasks.hh"
#include "model/transformer.hh"
#include "model/workload.hh"
#include "tensor/ops.hh"

namespace mokey
{
namespace
{

TEST(ModelConfig, PublishedParameterCounts)
{
    // Table in §IV-A: BERT-Base 110M, BERT-Large 340M,
    // RoBERTa-Large 340M class, DeBERTa-XL ~750M.
    EXPECT_NEAR(static_cast<double>(bertBase().totalParams()),
                110e6, 8e6);
    EXPECT_NEAR(static_cast<double>(bertLarge().totalParams()),
                340e6, 20e6);
    EXPECT_NEAR(static_cast<double>(robertaLarge().totalParams()),
                355e6, 25e6);
    EXPECT_NEAR(static_cast<double>(debertaXl().totalParams()),
                750e6, 80e6);
}

TEST(ModelConfig, Fig1ActivationCrossover)
{
    // Fig. 1: activations overtake weights between 512 and 1024
    // tokens for BERT-Large at FP16.
    const auto cfg = bertLarge();
    const size_t wb = cfg.weightBytes(16);
    EXPECT_LT(cfg.activationBytes(256, 16), wb);
    EXPECT_GT(cfg.activationBytes(1024, 16), wb);
}

TEST(ModelConfig, ActivationsQuadraticInSeq)
{
    const auto cfg = bertLarge();
    const double a1 =
        static_cast<double>(cfg.activationBytes(512, 16));
    const double a2 =
        static_cast<double>(cfg.activationBytes(2048, 16));
    // 4x sequence: more than 4x activations (quadratic term), less
    // than 16x (linear terms damp it).
    EXPECT_GT(a2 / a1, 4.0);
    EXPECT_LT(a2 / a1, 16.0);
}

TEST(ModelConfig, ReducedKeepsDivisibility)
{
    for (const auto &cfg : {bertBase(), bertLarge(), debertaXl()}) {
        const auto r = reduced(cfg);
        EXPECT_EQ(r.hidden % r.heads, 0u);
        EXPECT_LE(r.layers, 4u);
        EXPECT_EQ(r.ffn, 4 * r.hidden);
    }
}

ModelConfig
tinyConfig()
{
    return ModelConfig{"tiny", 2, 32, 2, 128, 256};
}

TEST(Transformer, ForwardShapeAndDeterminism)
{
    const Transformer m(tinyConfig(), 11);
    const Tensor in = m.makeInput(16, 5);
    const Tensor out1 = m.forward(in);
    const Tensor out2 = m.forward(in);
    EXPECT_EQ(out1.rows(), 16u);
    EXPECT_EQ(out1.cols(), 32u);
    EXPECT_DOUBLE_EQ(maxAbsDiff(out1, out2), 0.0);
}

TEST(Transformer, OutputIsLayerNormed)
{
    const Transformer m(tinyConfig(), 13);
    const Tensor out = m.forward(m.makeInput(8, 7));
    for (size_t r = 0; r < out.rows(); ++r) {
        double mean = 0.0;
        for (size_t c = 0; c < out.cols(); ++c)
            mean += out.at(r, c);
        EXPECT_NEAR(mean / 32.0, 0.0, 1e-4);
    }
}

TEST(Transformer, DifferentSeedsDifferentWeights)
{
    const Transformer a(tinyConfig(), 1), b(tinyConfig(), 2);
    EXPECT_GT(maxAbsDiff(a.weights()[0].wq, b.weights()[0].wq), 0.0);
}

TEST(Transformer, HookSeesAllGemmInputs)
{
    const Transformer m(tinyConfig(), 17);
    std::map<std::string, int> seen;
    m.forward(m.makeInput(8, 3), [&](const TensorId &id,
                                     const Tensor &) {
        ++seen[id.str()];
    });
    for (size_t l = 0; l < 2; ++l) {
        const std::string p = "L" + std::to_string(l) + ".";
        EXPECT_EQ(seen[p + "x"], 1);
        EXPECT_EQ(seen[p + "q"], 1);
        EXPECT_EQ(seen[p + "k"], 1);
        EXPECT_EQ(seen[p + "v"], 1);
        EXPECT_EQ(seen[p + "p"], 2); // one per head
        EXPECT_EQ(seen[p + "ctx"], 1);
        EXPECT_EQ(seen[p + "mid_in"], 1);
        EXPECT_EQ(seen[p + "mid"], 1);
    }
}

TEST(Profiler, ReservoirBounded)
{
    ActivationProfile p(100);
    Tensor big(50, 50);
    for (size_t i = 0; i < big.size(); ++i)
        big.raw()[i] = static_cast<float>(i);
    p.observe(big);
    EXPECT_EQ(p.samples().size(), 100u);
    EXPECT_EQ(p.observed(), 2500u);
}

TEST(Profiler, CollectsAllIds)
{
    const Transformer m(tinyConfig(), 19);
    ModelProfiler prof;
    prof.run(m, {m.makeInput(8, 1), m.makeInput(8, 2)});
    EXPECT_EQ(prof.ids().size(), 2u * 8u); // 8 ids per layer
    EXPECT_TRUE(prof.has({0, "x"}));
    EXPECT_TRUE(prof.has({1, "mid"}));
    EXPECT_FALSE(prof.has({5, "x"}));
    EXPECT_FALSE(prof.samples({0, "p"}).empty());
}

class PipelineFixture : public ::testing::Test
{
  protected:
    PipelineFixture()
        : model(tinyConfig(), 23),
          exp(1.179, -0.977, 8),
          quantizer(exp),
          pipeline(model, quantizer)
    {
        pipeline.quantizeWeights();
        std::vector<Tensor> batch;
        for (int i = 0; i < 4; ++i)
            batch.push_back(model.makeInput(16, 100 + i));
        pipeline.profileActivations(batch);
    }

    Transformer model;
    ExpDictionary exp;
    Quantizer quantizer;
    QuantizedTransformer pipeline;
};

TEST_F(PipelineFixture, Ready)
{
    EXPECT_TRUE(pipeline.ready());
}

TEST_F(PipelineFixture, WeightOutlierFractionInPaperBand)
{
    // Paper Table I: 1.2 - 1.6 % weight outliers. Synthetic weights
    // use a 1.5 % tail component; allow a generous band.
    const double f = pipeline.weightOutlierFraction();
    EXPECT_GT(f, 0.002);
    EXPECT_LT(f, 0.06);
}

TEST_F(PipelineFixture, WeightOnlyForwardTracksFloat)
{
    const Tensor in = model.makeInput(16, 999);
    const Tensor ref = model.forward(in);
    const Tensor wq = pipeline.forward(in, QuantMode::WeightsOnly);
    // Per-element drift after two layer-normed encoder layers stays
    // well below the activation scale (which is ~1 after LN).
    EXPECT_LT(meanAbsDiff(wq, ref), 0.35);
}

TEST_F(PipelineFixture, FullQuantizedForwardTracksFloat)
{
    const Tensor in = model.makeInput(16, 998);
    const Tensor ref = model.forward(in);
    const Tensor fq =
        pipeline.forward(in, QuantMode::WeightsAndActivations);
    EXPECT_LT(meanAbsDiff(fq, ref), 0.6);
    // And it must have routed a plausible outlier-pair fraction
    // through the OPP, not everything.
    EXPECT_LT(pipeline.matmulStats().outlierPairFraction(), 0.25);
}

TEST_F(PipelineFixture, ActivationOutlierFractionTracked)
{
    const Tensor in = model.makeInput(16, 997);
    pipeline.forward(in, QuantMode::WeightsAndActivations);
    const double f = pipeline.activationOutlierFraction();
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 0.15);
}

TEST(TaskMetrics, SpearmanPerfectAndInverted)
{
    const std::vector<double> a{1, 2, 3, 4, 5};
    const std::vector<double> b{10, 20, 30, 40, 50};
    std::vector<double> c(b.rbegin(), b.rend());
    EXPECT_DOUBLE_EQ(spearman(a, b), 1.0);
    EXPECT_DOUBLE_EQ(spearman(a, c), -1.0);
}

TEST(TaskMetrics, SpanF1Cases)
{
    EXPECT_DOUBLE_EQ(spanF1({2, 5}, {2, 5}), 1.0);
    EXPECT_DOUBLE_EQ(spanF1({0, 1}, {4, 6}), 0.0);
    // Half overlap: pred {0,3}, gold {2,5}: overlap 2, p=0.5, r=0.5.
    EXPECT_DOUBLE_EQ(spanF1({0, 3}, {2, 5}), 0.5);
}

TEST(TaskEvaluator, ReferenceScoreInPublishedBand)
{
    const Transformer m(tinyConfig(), 29);
    const TaskEvaluator task(m, TaskKind::Classification, 80, 16);
    const double score = task.evaluateReference();
    // With 15 % label noise the self-consistent score is ~90 %
    // (85 % kept + 1/3 of the noisy third matching by chance).
    EXPECT_GT(score, 80.0);
    EXPECT_LE(score, 95.0);
}

TEST(TaskEvaluator, DeterministicBenchmark)
{
    const Transformer m(tinyConfig(), 29);
    const TaskEvaluator t1(m, TaskKind::Classification, 40, 16);
    const TaskEvaluator t2(m, TaskKind::Classification, 40, 16);
    EXPECT_DOUBLE_EQ(t1.evaluateReference(), t2.evaluateReference());
}

TEST(TaskEvaluator, RegressionAndSpanScoresSane)
{
    const Transformer m(tinyConfig(), 31);
    const TaskEvaluator reg(m, TaskKind::Regression, 60, 16);
    const double sp = reg.evaluateReference();
    EXPECT_GT(sp, 70.0); // noisy targets still strongly correlated
    EXPECT_LE(sp, 100.0);

    const TaskEvaluator span(m, TaskKind::Span, 60, 16);
    const double f1 = span.evaluateReference();
    EXPECT_GT(f1, 70.0);
    EXPECT_LE(f1, 100.0);
}

TEST(TaskEvaluator, QuantizedWithinPaperErrBand)
{
    // The Table I claim: Mokey stays within ~1 % of the FP score.
    // The tiny synthetic model is harsher than BERT, so accept a
    // few percent.
    const Transformer m(tinyConfig(), 37);
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer qz(exp);
    QuantizedTransformer pipe(m, qz);
    pipe.quantizeWeights();
    std::vector<Tensor> batch;
    for (int i = 0; i < 4; ++i)
        batch.push_back(m.makeInput(16, 300 + i));
    pipe.profileActivations(batch);

    const TaskEvaluator task(m, TaskKind::Classification, 60, 16);
    const double fp = task.evaluateReference();
    const double q = task.evaluate([&](const Tensor &in) {
        return pipe.forward(in, QuantMode::WeightsAndActivations);
    });
    EXPECT_NEAR(q, fp, 10.0);
}

TEST(Workload, BertBaseMacCount)
{
    // BERT-Base at seq 128 is ~11.2 G MACs.
    const auto w = modelWorkload(bertBase(), 128);
    EXPECT_NEAR(static_cast<double>(w.totalMacs()), 11.2e9, 0.6e9);
}

TEST(Workload, BertLargeSquadMacCount)
{
    // BERT-Large at seq 384 is ~123 G MACs (Table III compute
    // cycles x 2048 lanes).
    const auto w = modelWorkload(bertLarge(), 384);
    EXPECT_NEAR(static_cast<double>(w.totalMacs()), 123e9, 8e9);
}

TEST(Workload, OpCountsAndRoles)
{
    const auto cfg = bertBase();
    const auto w = modelWorkload(cfg, 128);
    EXPECT_EQ(w.ops.size(), cfg.layers * 8);
    size_t act_gemms = 0;
    for (const auto &op : w.ops)
        act_gemms += op.weightStatic ? 0 : 1;
    EXPECT_EQ(act_gemms, cfg.layers * 2); // scores + pv per layer
}

TEST(Workload, WeightValuesMatchGeometry)
{
    const auto cfg = bertBase();
    const auto w = modelWorkload(cfg, 128);
    // 4 HxH + 2 Hx4H per layer.
    const uint64_t expect = cfg.layers *
        (4ull * cfg.hidden * cfg.hidden +
         2ull * cfg.hidden * cfg.ffn);
    EXPECT_EQ(w.weightValues(), expect);
}

TEST(Workload, ActivationValuesGrowWithSeq)
{
    const auto cfg = bertBase();
    const auto w128 = modelWorkload(cfg, 128);
    const auto w512 = modelWorkload(cfg, 512);
    EXPECT_GT(w512.activationValues(),
              4 * w128.activationValues());
}

} // anonymous namespace
} // namespace mokey
