/**
 * @file
 * Tests for the Table IV baseline quantizers.
 */

#include <cmath>
#include <gtest/gtest.h>
#include <set>

#include "common/rng.hh"
#include "quant/baselines.hh"
#include "tensor/ops.hh"

namespace mokey
{
namespace
{

Tensor
gaussianTensor(size_t rows, size_t cols, uint64_t seed,
               double stddev = 1.0)
{
    Rng rng(seed);
    return Tensor(rows, cols,
                  rng.gaussianVector(rows * cols, 0.0, stddev));
}

TEST(Fp32Baseline, Passthrough)
{
    const auto b = makeFp32Baseline();
    const Tensor t = gaussianTensor(8, 8, 1);
    EXPECT_DOUBLE_EQ(maxAbsDiff(b->quantizeWeights(t), t), 0.0);
    EXPECT_DOUBLE_EQ(b->compressionRatio(100, 100), 1.0);
}

TEST(Q8Bert, ErrorBoundedByStep)
{
    const auto b = makeQ8Bert();
    const Tensor t = gaussianTensor(32, 32, 2);
    const Tensor q = b->quantizeWeights(t);
    double mx = 0.0;
    for (float v : t.raw())
        mx = std::max(mx, std::abs(static_cast<double>(v)));
    const double step = mx / 127.0;
    EXPECT_LE(maxAbsDiff(q, t), step / 2.0 + 1e-6);
}

TEST(IBert, ClipsActivationTails)
{
    const auto b = makeIBert();
    Tensor t = gaussianTensor(64, 64, 3);
    t.raw()[0] = 1000.0f; // a wild outlier
    const Tensor q = b->quantizeActivations(t);
    // The outlier is clipped towards the percentile range.
    EXPECT_LT(q.raw()[0], 100.0f);
    // Bulk error stays small despite the outlier.
    double bulk_err = 0.0;
    for (size_t i = 1; i < t.size(); ++i)
        bulk_err = std::max(bulk_err,
                            std::abs(static_cast<double>(
                                q.raw()[i]) - t.raw()[i]));
    EXPECT_LT(bulk_err, 0.1);
}

TEST(QBert, GroupsHaveIndependentScales)
{
    const auto b = makeQBert(4);
    // First group tiny values, second group large: group-wise
    // scaling must keep the tiny group accurate.
    Tensor t(1, 8, {0.01f, 0.02f, -0.01f, 0.015f,
                    10.0f, -8.0f, 6.0f, 9.0f});
    const Tensor q = b->quantizeWeights(t);
    EXPECT_NEAR(q.at(0, 0), 0.01, 0.002);
    EXPECT_NEAR(q.at(0, 4), 10.0, 1.0);
}

TEST(Gobo, PreservesOutliersExactly)
{
    const auto b = makeGobo(0.01);
    Tensor t = gaussianTensor(64, 64, 4, 0.1);
    t.raw()[7] = 25.0f;
    const Tensor q = b->quantizeWeights(t);
    EXPECT_EQ(q.raw()[7], 25.0f); // outliers stay FP32
}

TEST(Gobo, BulkUsesEightCentroids)
{
    const auto b = makeGobo(0.0);
    const Tensor t = gaussianTensor(64, 64, 5);
    const Tensor q = b->quantizeWeights(t);
    std::set<float> uniq(q.raw().begin(), q.raw().end());
    EXPECT_LE(uniq.size(), 8u);
}

TEST(TernaryBert, ThreeLevelsPerRow)
{
    const auto b = makeTernaryBert();
    const Tensor t = gaussianTensor(4, 256, 6);
    const Tensor q = b->quantizeWeights(t);
    for (size_t r = 0; r < q.rows(); ++r) {
        std::set<float> uniq;
        for (size_t c = 0; c < q.cols(); ++c)
            uniq.insert(q.at(r, c));
        EXPECT_LE(uniq.size(), 3u) << "row " << r;
    }
}

TEST(TernaryBert, SignsPreserved)
{
    const auto b = makeTernaryBert();
    const Tensor t = gaussianTensor(2, 128, 7);
    const Tensor q = b->quantizeWeights(t);
    for (size_t i = 0; i < t.size(); ++i) {
        if (q.raw()[i] != 0.0f) {
            EXPECT_EQ(q.raw()[i] > 0, t.raw()[i] > 0)
                << "element " << i;
        }
    }
}

TEST(MokeyBaseline, RoundTripErrorSmall)
{
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer qz(exp);
    const auto b = makeMokeyBaseline(qz);
    const Tensor t = gaussianTensor(64, 64, 8);
    const Tensor q = b->quantizeWeights(t);
    EXPECT_LT(meanAbsDiff(q, t), 0.1);
    EXPECT_TRUE(b->integerCompute());
    EXPECT_TRUE(b->postTraining());
}

TEST(Table4Lineup, NamesAndOrder)
{
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer qz(exp);
    const auto lineup = makeTable4Lineup(qz);
    ASSERT_EQ(lineup.size(), 7u);
    EXPECT_EQ(lineup.front()->name(), "FP32 Baseline");
    EXPECT_EQ(lineup.back()->name(), "Mokey");
}

TEST(Table4Lineup, CompressionRatioOrdering)
{
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer qz(exp);
    const auto lineup = makeTable4Lineup(qz);
    // Mokey compresses more than the int8 methods and GOBO (whose
    // FP32 activations dominate), as Table IV reports.
    const double mokey =
        lineup.back()->compressionRatio(1000000, 500000);
    for (size_t i = 0; i < lineup.size() - 1; ++i) {
        if (lineup[i]->name() == "TernaryBERT")
            continue; // 2 b weights beat everyone on footprint
        EXPECT_GT(mokey,
                  lineup[i]->compressionRatio(1000000, 500000))
            << lineup[i]->name();
    }
}

TEST(Table4Lineup, OnlyMokeyAndIBertAreInteger)
{
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer qz(exp);
    for (const auto &m : makeTable4Lineup(qz)) {
        const bool integer = m->integerCompute();
        const bool expected = m->name() == "Mokey" ||
            m->name() == "I-BERT";
        EXPECT_EQ(integer, expected) << m->name();
    }
}

TEST(Table4Lineup, PostTrainingFlags)
{
    ExpDictionary exp(1.179, -0.977, 8);
    Quantizer qz(exp);
    for (const auto &m : makeTable4Lineup(qz)) {
        const bool pt = m->postTraining();
        const bool expected = m->name() == "Mokey" ||
            m->name() == "GOBO" || m->name() == "FP32 Baseline";
        EXPECT_EQ(pt, expected) << m->name();
    }
}

} // anonymous namespace
} // namespace mokey
