#!/usr/bin/env python3
"""Fail CI when a recorded kernel speedup regresses.

Usage:
  check_bench_regression.py <committed.json> <fresh.json>
  check_bench_regression.py <committed_dir> <fresh_dir>

In directory mode every BENCH_*.json in <committed_dir> is compared
against the same-named file in <fresh_dir>; a committed baseline
whose fresh counterpart is missing fails the gate (a bench that
silently stopped running is a regression too). File mode compares
exactly one pair, as before.

Within a pair, every record of the freshly measured file is compared
against the committed baseline, keyed on (kernel, m, n, k). A record
fails when its measured speedup drops more than the allowed fraction
(default 20%) below the committed speedup. Records with a zero
speedup field are raw timings, not comparisons, and are skipped;
records present on only one side are reported but never fatal (new
kernels appear, old ones retire).

Absolute ns/op is machine-dependent, but the speedup columns are
ratios measured on the same machine in the same run, which makes
them comparable across hosts to first order — that is what the gate
checks. The ratios still shift some with the host ISA and core count
(the engine kernels carry AVX2/AVX-512 target_clones, the seed
replicas are scalar, and the multi-lane dispatch ratios depend on
how many cores service the lanes), so the allowed envelope can be
widened via BENCH_ALLOWED_REGRESSION (fraction, default 0.20) — or
per bench via BENCH_ALLOWED_REGRESSION_<bench> keyed on the file's
"bench" name, e.g. BENCH_ALLOWED_REGRESSION_multilane=0.40 for a
heterogeneous runner pool.
"""

import glob
import json
import os
import sys

DEFAULT_ALLOWED = float(
    os.environ.get("BENCH_ALLOWED_REGRESSION", "0.20"))


def load(path):
    with open(path) as f:
        doc = json.load(f)
    records = {}
    for r in doc.get("records", []):
        key = (r["kernel"], r["m"], r["n"], r["k"])
        records[key] = r
    return doc.get("bench", ""), records


def allowed_for(bench_name):
    env = os.environ.get(f"BENCH_ALLOWED_REGRESSION_{bench_name}")
    return float(env) if env is not None else DEFAULT_ALLOWED


def check_pair(committed_path, fresh_path):
    """Compare one committed/fresh file pair; returns failed keys."""
    bench_name, baseline = load(committed_path)
    _, fresh = load(fresh_path)
    allowed = allowed_for(bench_name)

    failures = []
    for key, base in sorted(baseline.items()):
        base_speedup = base.get("speedup_vs_seed", 0.0)
        if base_speedup <= 0.0:
            continue  # raw timing row, not a comparison
        if key not in fresh:
            print(f"note: {key} missing from fresh run (skipped)")
            continue
        got = fresh[key].get("speedup_vs_seed", 0.0)
        floor = base_speedup * (1.0 - allowed)
        status = "ok" if got >= floor else "REGRESSED"
        print(f"{key[0]} {key[1]}x{key[2]}x{key[3]}: "
              f"committed {base_speedup:.2f}x, measured {got:.2f}x, "
              f"floor {floor:.2f}x -> {status}")
        if got < floor:
            failures.append(key)

    for key in sorted(set(fresh) - set(baseline)):
        if fresh[key].get("speedup_vs_seed", 0.0) > 0.0:
            print(f"note: new record {key} "
                  f"({fresh[key]['speedup_vs_seed']:.2f}x) has no "
                  f"committed baseline yet")
    return failures


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 2
    committed, fresh = sys.argv[1], sys.argv[2]

    missing = []
    if os.path.isdir(committed):
        pairs = []
        baselines = sorted(
            glob.glob(os.path.join(committed, "BENCH_*.json")))
        for path in baselines:
            other = os.path.join(fresh, os.path.basename(path))
            if os.path.exists(other):
                pairs.append((path, other))
            else:
                # A bench that silently stopped running is a
                # regression too — but keep comparing the rest, so
                # one run reports every problem at once.
                missing.append(other)
        if not baselines:
            print(f"FAIL: no BENCH_*.json baselines in {committed}")
            return 1
        committed_names = {os.path.basename(p) for p in baselines}
        for path in sorted(
                glob.glob(os.path.join(fresh, "BENCH_*.json"))):
            if os.path.basename(path) not in committed_names:
                print(f"note: {path} has no committed baseline — "
                      f"commit one to gate it")
    else:
        pairs = [(committed, fresh)]

    failures = []
    for committed_path, fresh_path in pairs:
        print(f"== {os.path.basename(committed_path)} ==")
        failures += [(os.path.basename(committed_path), key)
                     for key in check_pair(committed_path,
                                           fresh_path)]

    # One consolidated verdict: every regressed record across every
    # bench, plus every bench with no fresh measurement, in a single
    # run — no fix-one-rerun-find-the-next loop.
    if failures or missing:
        print("FAIL summary:")
        for bench, key in failures:
            print(f"  regressed: {bench} {key[0]} "
                  f"{key[1]}x{key[2]}x{key[3]}")
        for m in missing:
            print(f"  missing fresh measurement: {m}")
        print(f"FAIL: {len(failures)} regressed record(s), "
              f"{len(missing)} missing bench(es)")
        return 1
    print("all recorded speedups within the allowed envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
