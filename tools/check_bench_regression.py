#!/usr/bin/env python3
"""Fail CI when a recorded kernel speedup regresses.

Usage: check_bench_regression.py <committed.json> <fresh.json>

Compares every record of the freshly measured BENCH_*.json against
the committed baseline, keyed on (kernel, m, n, k). A record fails
when its measured speedup drops more than the allowed fraction
(default 20%) below the committed speedup. Records with a zero
speedup field are raw timings, not comparisons, and are skipped;
records present on only one side are reported but never fatal (new
kernels appear, old ones retire).

Absolute ns/op is machine-dependent, but the speedup columns are
ratios measured on the same machine in the same run, which makes
them comparable across hosts to first order — that is what the gate
checks. The ratios still shift some with the host ISA (the engine
kernels carry AVX2/AVX-512 target_clones, the seed replicas are
scalar), so the allowed envelope can be widened for a heterogeneous
runner pool via BENCH_ALLOWED_REGRESSION (fraction, default 0.20).
"""

import json
import os
import sys

ALLOWED_REGRESSION = float(
    os.environ.get("BENCH_ALLOWED_REGRESSION", "0.20"))


def load(path):
    with open(path) as f:
        doc = json.load(f)
    records = {}
    for r in doc.get("records", []):
        key = (r["kernel"], r["m"], r["n"], r["k"])
        records[key] = r
    return records


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 2
    baseline = load(sys.argv[1])
    fresh = load(sys.argv[2])

    failures = []
    for key, base in sorted(baseline.items()):
        base_speedup = base.get("speedup_vs_seed", 0.0)
        if base_speedup <= 0.0:
            continue  # raw timing row, not a comparison
        if key not in fresh:
            print(f"note: {key} missing from fresh run (skipped)")
            continue
        got = fresh[key].get("speedup_vs_seed", 0.0)
        floor = base_speedup * (1.0 - ALLOWED_REGRESSION)
        status = "ok" if got >= floor else "REGRESSED"
        print(f"{key[0]} {key[1]}x{key[2]}x{key[3]}: "
              f"committed {base_speedup:.2f}x, measured {got:.2f}x, "
              f"floor {floor:.2f}x -> {status}")
        if got < floor:
            failures.append(key)

    for key in sorted(set(fresh) - set(baseline)):
        if fresh[key].get("speedup_vs_seed", 0.0) > 0.0:
            print(f"note: new record {key} "
                  f"({fresh[key]['speedup_vs_seed']:.2f}x) has no "
                  f"committed baseline yet")

    if failures:
        print(f"FAIL: {len(failures)} kernel speedup(s) regressed "
              f">{ALLOWED_REGRESSION:.0%} vs the committed baseline")
        return 1
    print("all recorded speedups within the allowed envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
